// Command slicectl is the Slice client CLI. It mounts a volume — either
// from a running sliced over UDP (-connect) or from a throwaway in-process
// ensemble (the default, handy for demos) — and executes one file command:
//
//	slicectl -connect 127.0.0.1:20490 ls /
//	slicectl -connect 127.0.0.1:20490 mkdir /src
//	slicectl -connect 127.0.0.1:20490 put /src/a.txt "hello"
//	slicectl -connect 127.0.0.1:20490 get /src/a.txt
//	slicectl -connect 127.0.0.1:20490 stat /src/a.txt
//	slicectl -connect 127.0.0.1:20490 mv /src/a.txt /src/b.txt
//	slicectl -connect 127.0.0.1:20490 rm /src/b.txt
//	slicectl -connect 127.0.0.1:20490 untar /stress 500
//	slicectl -connect 127.0.0.1:20490 stats
//	slicectl -connect 127.0.0.1:20490 trace 16
//
// With -proxies N the in-process ensemble runs an N-member µproxy
// fleet; stats then shows each member under its own label plus the
// merged uproxy(fleet) aggregate, and trace spans carry the member
// that recorded them.
//
//	slicectl -proxies 4 stats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"slice/internal/client"
	"slice/internal/ensemble"
	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/rebalance"
	"slice/internal/route"
	"slice/internal/udpgate"
	"slice/internal/wire"
	"slice/internal/workload"
	"slice/internal/xdr"
)

func main() {
	connect := flag.String("connect", "", "address of a running sliced (empty: in-process ensemble)")
	tcp := flag.Bool("tcp", false, "dial -connect over record-marked TCP (a sliced -tcp gateway) instead of UDP")
	proxies := flag.Int("proxies", 1, "µproxy fleet size for the in-process ensemble")
	replication := flag.Int("replication", 1, "k-way storage replication for the in-process ensemble")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: slicectl [-connect addr] <ls|mkdir|put|get|stat|mv|rm|rmdir|df|untar|stats|trace|grow|shrink|rebalance-status> [args]")
		os.Exit(2)
	}

	// stats and trace talk the absorbed stats RPC program directly to the
	// virtual server; no mount, no NFS client.
	statsCmd := args[0] == "stats" || args[0] == "trace" ||
		args[0] == "grow" || args[0] == "shrink" || args[0] == "rebalance-status"

	var c *client.Client
	var rc *oncrpc.Client
	if *connect != "" {
		var conn oncrpc.Conn
		var err error
		if *tcp {
			conn, err = wire.Dial(*connect)
		} else {
			conn, err = udpgate.Dial(*connect)
		}
		if err != nil {
			log.Fatalf("slicectl: dial: %v", err)
		}
		if statsCmd {
			rc = oncrpc.NewClient(conn, netsim.Addr{}, oncrpc.ClientConfig{})
			defer rc.Close()
		} else {
			c = client.NewWithConn(conn, client.Config{})
			if err := c.Mount(); err != nil {
				log.Fatalf("slicectl: mount: %v", err)
			}
			defer c.Close()
		}
	} else {
		e, err := ensemble.New(ensemble.Config{
			StorageNodes: 4, DirServers: 2, SmallFileServers: 2, Proxies: *proxies,
			Replication: *replication,
			Coordinator: true, NameKind: route.MkdirSwitching, MkdirP: 0.25,
		})
		if err != nil {
			log.Fatalf("slicectl: ensemble: %v", err)
		}
		defer e.Close()
		c, err = e.NewClient()
		if err != nil {
			log.Fatalf("slicectl: client: %v", err)
		}
		defer c.Close()
		if statsCmd {
			// A throwaway ensemble has nothing to report until it serves
			// traffic; drive a short untar so the demo shows real numbers.
			if _, err := workload.Untar(c, c.Root(), workload.UntarConfig{Entries: 200}); err != nil {
				log.Fatalf("slicectl: warmup untar: %v", err)
			}
			if *replication > 1 {
				// Bulk write + reads so the replica section (dirty-set
				// occupancy, read spread) has samples.
				if _, err := workload.DD(c, c.Root(), workload.DDConfig{Bytes: 1 << 20, Write: true}); err != nil {
					log.Fatalf("slicectl: warmup dd write: %v", err)
				}
				if _, err := workload.DD(c, c.Root(), workload.DDConfig{Bytes: 1 << 20, Verify: true}); err != nil {
					log.Fatalf("slicectl: warmup dd read: %v", err)
				}
			}
			port, err := e.Net.Bind(netsim.Addr{Host: ensemble.HostClient0 + 99, Port: 901})
			if err != nil {
				log.Fatalf("slicectl: bind: %v", err)
			}
			rc = oncrpc.NewClient(port, e.Virtual, oncrpc.ClientConfig{})
			defer rc.Close()
		}
	}

	var err error
	if statsCmd {
		err = runStats(rc, args)
	} else {
		err = run(c, args)
	}
	if err != nil {
		log.Fatalf("slicectl: %v", err)
	}
}

// statsCall makes one call to the absorbed stats program and returns the
// opaque JSON it carries.
func statsCall(rc *oncrpc.Client, proc, arg uint32) ([]byte, error) {
	body, err := rc.Call(obs.Program, obs.Version, proc, func(e *xdr.Encoder) {
		e.PutUint32(arg)
	})
	if err != nil {
		return nil, err
	}
	return xdr.NewDecoder(body).Opaque()
}

// runStats executes the stats and trace subcommands against a live
// ensemble's collector, over the same wire the NFS traffic uses.
func runStats(rc *oncrpc.Client, args []string) error {
	switch args[0] {
	case "stats":
		raw, err := statsCall(rc, obs.ProcSnapshot, 0)
		if err != nil {
			return fmt.Errorf("stats: %w", err)
		}
		var snap obs.ClusterSnapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			return fmt.Errorf("stats: %w", err)
		}
		for _, comp := range snap.Components {
			comp.WriteText(os.Stdout)
		}
		// With a scaled-out fleet every member reports under its own
		// label ("uproxy", "uproxy[1]", ...); append the merged
		// fleet-wide view so totals don't have to be summed by eye.
		if fleet, n := snap.MergeRole("uproxy", "uproxy(fleet)"); n > 1 {
			fleet.WriteText(os.Stdout)
		}
		printReplicaSection(snap)
		return nil

	case "grow", "shrink":
		if len(args) < 2 {
			return fmt.Errorf("%s: node count required", args[0])
		}
		n, err := strconv.Atoi(args[1])
		if err != nil || n <= 0 {
			return fmt.Errorf("%s: bad node count %q", args[0], args[1])
		}
		proc := uint32(obs.ProcGrow)
		if args[0] == "shrink" {
			proc = obs.ProcShrink
		}
		raw, err := statsCall(rc, proc, uint32(n))
		if err != nil {
			return fmt.Errorf("%s: %w", args[0], err)
		}
		fmt.Printf("%s\n", raw)
		fmt.Println("rebalance started; watch with: slicectl rebalance-status")
		return nil

	case "rebalance-status":
		raw, err := statsCall(rc, obs.ProcRebalanceStatus, 0)
		if err != nil {
			return fmt.Errorf("rebalance-status: %w", err)
		}
		var st rebalance.Status
		if err := json.Unmarshal(raw, &st); err != nil {
			return fmt.Errorf("rebalance-status: %w", err)
		}
		fmt.Printf("state %s  epoch %d  round %d  objects %d\n", st.State, st.Epoch, st.Round, st.Objects)
		fmt.Printf("chunks checked %d  repaired %d  bytes moved %d  ghosts removed %d\n",
			st.ChunksChecked, st.ChunksRepaired, st.BytesMoved, st.Ghosts)
		if st.Err != "" {
			fmt.Printf("error: %s\n", st.Err)
		}
		return nil

	case "trace":
		max := 16
		if len(args) > 1 {
			n, err := strconv.Atoi(args[1])
			if err != nil {
				return fmt.Errorf("trace: bad span count %q", args[1])
			}
			max = n
		}
		raw, err := statsCall(rc, obs.ProcTraces, uint32(max))
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		var spans []obs.NamedSpan
		if err := json.Unmarshal(raw, &spans); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		for _, s := range spans {
			printSpan(s)
		}
		return nil
	}
	return fmt.Errorf("unknown command %q", args[0])
}

// printReplicaSection renders replica health from the cluster snapshot:
// the µproxy fleet's dirty-set occupancy and pinned reads, the per-group
// read-spread balance (the replica.read[g.m] hists count spread reads per
// member slot), and per-node resync sizes from the storage tier. Silent
// on an unreplicated array — no replica hists ever record.
func printReplicaSection(snap obs.ClusterSnapshot) {
	up, _ := snap.MergeRole("uproxy", "uproxy(fleet)")

	// Per-group spread counts keyed by "replica.read[group.member]".
	groups := make(map[int]map[int]uint64)
	for name, h := range up.Hists {
		var g, m int
		if _, err := fmt.Sscanf(name, "replica.read[%d.%d]", &g, &m); err == nil {
			if groups[g] == nil {
				groups[g] = make(map[int]uint64)
			}
			groups[g][m] += h.Count()
		}
	}
	dirty := up.Hists["replica.dirty_occupancy"]
	pinned := up.Hists["replica.pinned_reads"]
	if len(groups) == 0 && dirty.Count() == 0 && pinned.Count() == 0 {
		return
	}

	fmt.Println("replica:")
	fmt.Printf("  dirty-set occupancy: samples=%d p50=%d p99=%d max=%d\n",
		dirty.Count(), dirty.Percentile(0.50), dirty.Percentile(0.99), dirty.Max())
	fmt.Printf("  pinned reads: %d\n", pinned.Count())
	gids := make([]int, 0, len(groups))
	for g := range groups {
		gids = append(gids, g)
	}
	sort.Ints(gids)
	for _, g := range gids {
		members := groups[g]
		mids := make([]int, 0, len(members))
		for m := range members {
			mids = append(mids, m)
		}
		sort.Ints(mids)
		var parts []string
		min, max := uint64(0), uint64(0)
		for i, m := range mids {
			n := members[m]
			parts = append(parts, fmt.Sprintf("m%d=%d", m, n))
			if i == 0 || n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		balance := 1.0
		if max > 0 {
			balance = float64(min) / float64(max)
		}
		fmt.Printf("  group %d read spread: %s balance=%.2f\n", g, strings.Join(parts, " "), balance)
	}
	// Resyncs report from each storage node's registry: one sample per
	// rebuild, valued at the bytes copied from the surviving sibling.
	for _, comp := range snap.Components {
		if h, ok := comp.Hists["replica.resync_bytes"]; ok && h.Count() > 0 {
			fmt.Printf("  %s resyncs: %d (last ~%d bytes)\n", comp.Component, h.Count(), h.Max())
		}
	}
}

// printSpan renders one archived span: the op, its end-to-end time, the
// µproxy stage costs, and every hop with the server-side share when the
// reply carried the trace field.
func printSpan(s obs.NamedSpan) {
	total := uint64(0)
	if s.End > s.Start {
		total = uint64(s.End - s.Start)
	}
	fmt.Printf("%s xid=%d %s total=%s classify=%s route=%s rewrite=%s\n",
		s.Component, s.ID, obs.OpName(s.Prog, s.Proc), obs.Nanos(total),
		obs.Nanos(s.ClassifyNS), obs.Nanos(s.RouteNS), obs.Nanos(s.RewriteNS))
	hops := s.NHops
	if hops > obs.MaxHops {
		hops = obs.MaxHops
	}
	for _, h := range s.Hops[:hops] {
		fmt.Printf("  hop %-10s %10s", h.Kind, obs.Nanos(h.TotalNS))
		if h.ServerNS > 0 {
			fmt.Printf("  (server %s, wire+queue %s)", obs.Nanos(h.ServerNS), obs.Nanos(h.TotalNS-h.ServerNS))
		}
		fmt.Println()
	}
	if s.NHops > obs.MaxHops {
		fmt.Printf("  ... %d more hops not itemized\n", s.NHops-obs.MaxHops)
	}
}

// resolve walks an absolute path to a handle.
func resolve(c *client.Client, path string) (fhandle.Handle, error) {
	cur := c.Root()
	for _, part := range splitPath(path) {
		fh, _, err := c.Lookup(cur, part)
		if err != nil {
			return fhandle.Handle{}, fmt.Errorf("%s: %w", part, err)
		}
		cur = fh
	}
	return cur, nil
}

// resolveParent returns the handle of the path's directory and the final
// name component.
func resolveParent(c *client.Client, path string) (fhandle.Handle, string, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return fhandle.Handle{}, "", fmt.Errorf("path %q has no final component", path)
	}
	dir := c.Root()
	for _, part := range parts[:len(parts)-1] {
		fh, _, err := c.Lookup(dir, part)
		if err != nil {
			return fhandle.Handle{}, "", fmt.Errorf("%s: %w", part, err)
		}
		dir = fh
	}
	return dir, parts[len(parts)-1], nil
}

func splitPath(path string) []string {
	var out []string
	for _, p := range strings.Split(path, "/") {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(c *client.Client, args []string) error {
	cmd := args[0]
	need := func(n int) error {
		if len(args) < n+1 {
			return fmt.Errorf("%s: missing arguments", cmd)
		}
		return nil
	}
	switch cmd {
	case "ls":
		if err := need(1); err != nil {
			return err
		}
		dir, err := resolve(c, args[1])
		if err != nil {
			return err
		}
		ents, err := c.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			fmt.Println(e.Name)
		}
		return nil

	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		dir, name, err := resolveParent(c, args[1])
		if err != nil {
			return err
		}
		_, _, err = c.Mkdir(dir, name, 0o755)
		return err

	case "put":
		if err := need(2); err != nil {
			return err
		}
		dir, name, err := resolveParent(c, args[1])
		if err != nil {
			return err
		}
		fh, _, err := c.Create(dir, name, 0o644, false)
		if err != nil {
			return err
		}
		return c.WriteFile(fh, []byte(args[2]))

	case "get":
		if err := need(1); err != nil {
			return err
		}
		fh, err := resolve(c, args[1])
		if err != nil {
			return err
		}
		data, err := c.ReadAll(fh)
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		fmt.Println()
		return nil

	case "stat":
		if err := need(1); err != nil {
			return err
		}
		fh, err := resolve(c, args[1])
		if err != nil {
			return err
		}
		at, err := c.GetAttr(fh)
		if err != nil {
			return err
		}
		fmt.Printf("type %v mode %o nlink %d size %d used %d fileid %d site %d\n",
			at.Type, at.Mode, at.Nlink, at.Size, at.Used, at.FileID, fh.Site)
		return nil

	case "mv":
		if err := need(2); err != nil {
			return err
		}
		fromDir, fromName, err := resolveParent(c, args[1])
		if err != nil {
			return err
		}
		toDir, toName, err := resolveParent(c, args[2])
		if err != nil {
			return err
		}
		return c.Rename(fromDir, fromName, toDir, toName)

	case "rm":
		if err := need(1); err != nil {
			return err
		}
		dir, name, err := resolveParent(c, args[1])
		if err != nil {
			return err
		}
		return c.Remove(dir, name)

	case "rmdir":
		if err := need(1); err != nil {
			return err
		}
		dir, name, err := resolveParent(c, args[1])
		if err != nil {
			return err
		}
		return c.Rmdir(dir, name)

	case "df":
		res, err := c.FsStat(c.Root())
		if err != nil {
			return err
		}
		fmt.Printf("bytes: %d total, %d free; files: %d total, %d free\n",
			res.TotalBytes, res.FreeBytes, res.TotalFiles, res.FreeFiles)
		return nil

	case "untar":
		if err := need(2); err != nil {
			return err
		}
		entries, err := strconv.Atoi(args[2])
		if err != nil {
			return fmt.Errorf("untar: bad entry count %q", args[2])
		}
		dir, name, err := resolveParent(c, args[1])
		if err != nil {
			return err
		}
		_ = dir
		st, err := workload.Untar(c, c.Root(), workload.UntarConfig{
			Entries: entries, Prefix: name,
		})
		if err != nil {
			return err
		}
		fmt.Printf("untar: %d dirs, %d files, %d NFS ops\n", st.Dirs, st.Files, st.NFSOps)
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
