// Package bench regenerates every table and figure of the paper's
// evaluation (§5). Each experiment prints the same rows or series the
// paper reports, alongside the paper's own numbers where it states them,
// so shape and crossover comparisons are immediate.
//
// Performance-shape experiments (Table 2, Figures 3-6) run on the
// calibrated discrete-event simulator (internal/sim); the µproxy cost
// breakdown (Table 3) is measured on the live implementation under the
// untar workload.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Experiment names accepted by Run.
var Experiments = []string{
	"table2", "table3", "fig3", "fig4", "fig5", "fig6", "live", "fleet",
	"ablation-hash", "ablation-threshold", "ablation-placement",
	"ablation-affinity-policy",
}

// LiveOut is the default BENCH_live.json path for Run("live", ...);
// cmd/slicebench overrides it from -live-out.
var LiveOut = "BENCH_live.json"

// Run executes the named experiment, writing its report to w.
func Run(name string, w io.Writer) error {
	switch name {
	case "table2":
		return Table2(w)
	case "table3":
		return Table3(w)
	case "fig3":
		return Fig3(w)
	case "fig4":
		return Fig4(w)
	case "fig5":
		return Fig5(w)
	case "fig6":
		return Fig6(w)
	case "live":
		return Live(w, LiveOut)
	case "fleet":
		return Fleet(w)
	case "ablation-hash":
		return AblationHash(w)
	case "ablation-threshold":
		return AblationThreshold(w)
	case "ablation-placement":
		return AblationPlacement(w)
	case "ablation-affinity-policy":
		return AblationAffinityPolicy(w)
	case "all":
		for _, n := range Experiments {
			if err := Run(n, w); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return fmt.Errorf("bench: unknown experiment %q (have %s, all)",
			name, strings.Join(Experiments, ", "))
	}
}

// header prints an experiment banner.
func header(w io.Writer, title, caption string) {
	fmt.Fprintf(w, "=== %s ===\n%s\n\n", title, caption)
}

// table is a tiny column formatter.
type table struct {
	cols []string
	rows [][]string
}

func newTable(cols ...string) *table { return &table{cols: cols} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...interface{}) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.cols))
	for i, c := range t.cols {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.cols)
	sep := make([]string, len(t.cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// seriesKeys returns sorted map keys for stable output.
func seriesKeys(m map[int][]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
