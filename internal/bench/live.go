package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"slice/internal/client"
	"slice/internal/ensemble"
	"slice/internal/fhandle"
	"slice/internal/obs"
	"slice/internal/route"
	"slice/internal/workload"
)

// Live runs three workload phases — untar, an SPECsfs-like op mix, and
// dd-style bulk I/O — against a live ensemble with the observability
// layer on, and emits BENCH_live.json: per-op-class latency percentiles
// and the µproxy's per-hop and per-stage breakdowns, per phase. The
// same numbers print as a report on w.
func Live(w io.Writer, outPath string) error {
	header(w, "Live latency breakdown",
		"End-to-end op-class percentiles and per-hop attribution from the\n"+
			"always-on trace/histogram layer, per workload phase.")

	e, err := ensemble.New(ensemble.Config{
		StorageNodes: 4, DirServers: 2, SmallFileServers: 2,
		Coordinator: true, NameKind: route.MkdirSwitching, MkdirP: 0.25,
	})
	if err != nil {
		return err
	}
	defer e.Close()
	c, err := e.NewClient()
	if err != nil {
		return err
	}
	defer c.Close()

	phases := []struct {
		name string
		run  func() (int, *liveBW, error)
	}{
		{"untar", func() (int, *liveBW, error) { n, err := liveUntar(c); return n, nil, err }},
		{"sfs-mix", func() (int, *liveBW, error) { n, err := liveSfsMix(c); return n, nil, err }},
		{"dd", func() (int, *liveBW, error) { return liveDD(c) }},
	}

	report := liveReport{Experiment: "live"}
	prev := e.Obs.Snapshot()
	for _, ph := range phases {
		ops, bw, err := ph.run()
		if err != nil {
			return fmt.Errorf("live %s: %w", ph.name, err)
		}
		cur := e.Obs.Snapshot()
		report.Phases = append(report.Phases, livePhase{
			Name:      ph.name,
			Ops:       ops,
			Bandwidth: bw,
			OpClasses: phaseHists(prev, cur, "uproxy", "e2e."),
			Hops:      phaseHists(prev, cur, "uproxy", "hop."),
			Stages:    phaseHists(prev, cur, "uproxy", "stage."),
		})
		prev = cur
	}

	for _, ph := range report.Phases {
		fmt.Fprintf(w, "phase %s (%d ops)\n", ph.Name, ph.Ops)
		if ph.Bandwidth != nil {
			fmt.Fprintf(w, "  bandwidth: write %.1f MB/s, read %.1f MB/s (windowed bulk path)\n",
				ph.Bandwidth.WriteMBps, ph.Bandwidth.ReadMBps)
		}
		tbl := newTable("op class", "count", "p50", "p95", "p99", "max")
		for _, name := range sortedHistNames(ph.OpClasses) {
			h := ph.OpClasses[name]
			tbl.add(name, fmt.Sprint(h.Count),
				obs.Nanos(h.P50), obs.Nanos(h.P95), obs.Nanos(h.P99), obs.Nanos(h.Max))
		}
		for _, name := range sortedHistNames(ph.Hops) {
			h := ph.Hops[name]
			tbl.add(name, fmt.Sprint(h.Count),
				obs.Nanos(h.P50), obs.Nanos(h.P95), obs.Nanos(h.P99), obs.Nanos(h.Max))
		}
		tbl.write(w)
		fmt.Fprintln(w)
	}

	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", outPath)
	}
	return nil
}

// liveReport is the BENCH_live.json schema.
type liveReport struct {
	Experiment string      `json:"experiment"`
	Phases     []livePhase `json:"phases"`
}

type livePhase struct {
	Name      string              `json:"name"`
	Ops       int                 `json:"ops"`
	Bandwidth *liveBW             `json:"bandwidth,omitempty"`
	OpClasses map[string]liveHist `json:"op_classes"`
	Hops      map[string]liveHist `json:"hops"`
	Stages    map[string]liveHist `json:"stages"`
}

// liveBW reports a bulk phase's throughput (decimal MB/s), so the bulk
// path shows up in the exposition as bandwidth and not just op latency.
type liveBW struct {
	WriteMBps float64 `json:"write_mbps"`
	ReadMBps  float64 `json:"read_mbps"`
}

// liveHist is one histogram's summary, in nanoseconds.
type liveHist struct {
	Count uint64 `json:"count"`
	P50   uint64 `json:"p50_ns"`
	P95   uint64 `json:"p95_ns"`
	P99   uint64 `json:"p99_ns"`
	Max   uint64 `json:"max_ns"`
}

// phaseHists summarizes the histograms of one component whose names
// carry the prefix, over the interval between two cumulative snapshots.
func phaseHists(prev, cur obs.ClusterSnapshot, component, prefix string) map[string]liveHist {
	out := make(map[string]liveHist)
	cc, ok := cur.Component(component)
	if !ok {
		return out
	}
	pc, _ := prev.Component(component)
	for name, h := range cc.Hists {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		if ph, ok := pc.Hists[name]; ok {
			h = subSnap(h, ph)
		}
		if h.Count() == 0 {
			continue
		}
		out[strings.TrimPrefix(name, prefix)] = liveHist{
			Count: h.Count(),
			P50:   h.Percentile(0.50),
			P95:   h.Percentile(0.95),
			P99:   h.Percentile(0.99),
			Max:   h.Max(),
		}
	}
	return out
}

// subSnap subtracts an earlier cumulative snapshot from a later one,
// yielding the interval's histogram. Counters only grow, so bucket-wise
// subtraction is exact.
func subSnap(cur, prev obs.HistSnapshot) obs.HistSnapshot {
	var out obs.HistSnapshot
	for i := range cur.Buckets {
		out.Buckets[i] = cur.Buckets[i] - prev.Buckets[i]
	}
	return out
}

func sortedHistNames(m map[string]liveHist) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// liveUntar is the name-intensive phase.
func liveUntar(c *client.Client) (int, error) {
	st, err := workload.Untar(c, c.Root(), workload.UntarConfig{Entries: 600, Prefix: "live"})
	if err != nil {
		return 0, err
	}
	return st.NFSOps, nil
}

// liveSfsMix approximates the SPECsfs97 op mix on live files: a working
// set of small files exercised with the published lookup/read/write/
// getattr/create proportions.
func liveSfsMix(c *client.Client) (int, error) {
	dir, _, err := c.Mkdir(c.Root(), "sfs", 0o755)
	if err != nil {
		return 0, err
	}
	const files = 50
	names := make([]string, files)
	fhs := make([]fhandle.Handle, files)
	buf := make([]byte, 4096)
	for i := range names {
		names[i] = fmt.Sprintf("f%03d", i)
		fh, _, err := c.Create(dir, names[i], 0o644, true)
		if err != nil {
			return 0, err
		}
		if _, err := c.Write(fh, 0, buf, true); err != nil {
			return 0, err
		}
		fhs[i] = fh
	}
	ops := 2 * files
	rng := uint64(1)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for i := 0; i < 1000; i++ {
		k := next(files)
		switch p := next(100); {
		case p < 27: // LOOKUP 27%
			if _, _, err := c.Lookup(dir, names[k]); err != nil {
				return ops, err
			}
		case p < 45: // READ 18%
			if _, _, err := c.Read(fhs[k], 0, buf); err != nil {
				return ops, err
			}
		case p < 54: // WRITE 9%
			if _, err := c.Write(fhs[k], 0, buf, true); err != nil {
				return ops, err
			}
		case p < 65: // GETATTR 11%
			if _, err := c.GetAttr(fhs[k]); err != nil {
				return ops, err
			}
		case p < 72: // READDIR 7%
			if _, err := c.ReadDir(dir); err != nil {
				return ops, err
			}
		case p < 74: // CREATE 2%
			name := fmt.Sprintf("t%04d", i)
			if _, _, err := c.Create(dir, name, 0o644, false); err != nil {
				return ops, err
			}
		default: // ACCESS and the remaining name ops
			if _, err := c.Access(fhs[k], 1); err != nil {
				return ops, err
			}
		}
		ops++
	}
	return ops, nil
}

// liveDD is the bulk-I/O phase: a large sequential unstable write, a
// commit, and a verified sequential read back through the striped
// windowed path, timed so the phase reports MB/s.
func liveDD(c *client.Client) (int, *liveBW, error) {
	const total = 4 << 20
	ops := total/(64<<10)*2 + 2 // writes + reads + create + commit
	wst, err := workload.DD(c, c.Root(), workload.DDConfig{Name: "dd.dat", Bytes: total, Write: true})
	if err != nil {
		return 0, nil, err
	}
	rst, err := workload.DD(c, c.Root(), workload.DDConfig{Name: "dd.dat", Bytes: total, Verify: true})
	if err != nil {
		return ops, nil, err
	}
	if rst.Mismatch || rst.Bytes != total {
		return ops, nil, fmt.Errorf("dd: read back %d bytes, mismatch=%v", rst.Bytes, rst.Mismatch)
	}
	return ops, &liveBW{WriteMBps: wst.MBps(), ReadMBps: rst.MBps()}, nil
}
