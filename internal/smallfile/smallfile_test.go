package smallfile

import (
	"bytes"
	"testing"
	"testing/quick"

	"slice/internal/fhandle"
	"slice/internal/storage"
	"slice/internal/wal"
)

func newStore(t *testing.T) (*Store, *wal.MemStore) {
	t.Helper()
	ms := wal.NewMemStore()
	log, err := wal.Open(ms)
	if err != nil {
		t.Fatal(err)
	}
	return NewStore(storage.NewObjectStore(), 1, log), ms
}

func fh(id uint64) fhandle.Handle {
	return fhandle.Handle{Volume: 1, FileID: id, Type: 1, Gen: 1}
}

func TestRoundFrag(t *testing.T) {
	cases := map[int32]int32{
		0: 128, 1: 128, 128: 128, 129: 256, 200: 256,
		4096: 4096, 4097: 8192, 8192: 8192, 9000: 8192,
	}
	for in, want := range cases {
		if got := roundFrag(in); got != want {
			t.Errorf("roundFrag(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPaperExample8300Bytes(t *testing.T) {
	// §4.4: an 8300 byte file consumes 8320 bytes of physical storage:
	// 8192 for the first block and 128 for the remaining 108 bytes.
	s, _ := newStore(t)
	f := fh(1)
	if err := s.Write(f, 0, make([]byte, 8300), false); err != nil {
		t.Fatal(err)
	}
	if used := s.Used(f); used != 8320 {
		t.Fatalf("physical usage = %d, want 8320", used)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s, _ := newStore(t)
	f := fh(2)
	data := bytes.Repeat([]byte("slice"), 1000) // 5000 bytes
	if err := s.Write(f, 0, data, false); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	n, eof, err := s.Read(f, 0, buf)
	if err != nil || n != len(data) || !eof {
		t.Fatalf("read: n=%d eof=%v err=%v", n, eof, err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("content mismatch")
	}
}

func TestGrowthMigratesData(t *testing.T) {
	s, _ := newStore(t)
	f := fh(3)
	// Small write allocates a 128B fragment; extending the same block
	// must migrate the old bytes into the larger fragment.
	if err := s.Write(f, 0, []byte("head"), false); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(f, 100, bytes.Repeat([]byte("z"), 400), false); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, _, err := s.Read(f, 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "head" {
		t.Fatalf("original bytes lost in fragment growth: %q", buf)
	}
	st := s.Stats()
	if st.Grows == 0 {
		t.Fatal("no fragment growth recorded")
	}
	if st.FragFrees == 0 {
		t.Fatal("old fragment not freed")
	}
}

func TestFragmentReuse(t *testing.T) {
	s, _ := newStore(t)
	// Create then remove a file; its fragments return to the free list
	// and satisfy the next allocation without growing the object.
	f1 := fh(4)
	if err := s.Write(f1, 0, make([]byte, 1000), false); err != nil {
		t.Fatal(err)
	}
	grewBy := s.Stats().AppendBytes
	s.Remove(f1)
	f2 := fh(5)
	if err := s.Write(f2, 0, make([]byte, 1000), false); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FragReuses == 0 {
		t.Fatal("freed fragment not reused")
	}
	if st.AppendBytes != grewBy {
		t.Fatalf("backing object grew (%d -> %d) despite free fragment", grewBy, st.AppendBytes)
	}
}

func TestBestFitPrefersSmallestClass(t *testing.T) {
	s, _ := newStore(t)
	// Free a 1024 fragment and a 8192 fragment; a 900-byte allocation
	// must take the 1024 one.
	big := fh(10)
	_ = s.Write(big, 0, make([]byte, 8192), false)
	small := fh(11)
	_ = s.Write(small, 0, make([]byte, 1000), false) // 1024 fragment
	s.Remove(big)
	s.Remove(small)

	f := fh(12)
	_ = s.Write(f, 0, make([]byte, 900), false)
	// The 8192 fragment must still be available: a subsequent 8KB write
	// reuses it rather than growing the object.
	grew := s.Stats().AppendBytes
	f2 := fh(13)
	_ = s.Write(f2, 0, make([]byte, 8192), false)
	if s.Stats().AppendBytes != grew {
		t.Fatal("8KB fragment was consumed by the 900B allocation (not best fit)")
	}
}

func TestHolesReadZero(t *testing.T) {
	s, _ := newStore(t)
	f := fh(6)
	if err := s.Write(f, 2*LogicalBlock, []byte("far"), false); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, _, err := s.Read(f, 100, buf)
	if err != nil || n != 10 {
		t.Fatalf("hole read: n=%d err=%v", n, err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole not zero-filled")
		}
	}
}

func TestWriteBeyondThresholdRejected(t *testing.T) {
	s, _ := newStore(t)
	err := s.Write(fh(7), MaxBlocks*LogicalBlock-2, []byte("overflow"), false)
	if err == nil {
		t.Fatal("write past the threshold region succeeded")
	}
}

func TestTruncate(t *testing.T) {
	s, _ := newStore(t)
	f := fh(8)
	_ = s.Write(f, 0, bytes.Repeat([]byte{0xEE}, 3*LogicalBlock), false)
	if err := s.Truncate(f, 100); err != nil {
		t.Fatal(err)
	}
	if size, _ := s.Size(f); size != 100 {
		t.Fatalf("size = %d", size)
	}
	if frees := s.Stats().FragFrees; frees < 2 {
		t.Fatalf("truncate freed %d fragments, want >= 2", frees)
	}
	// Shrink-then-extend must expose zeros past the cut.
	if err := s.Truncate(f, 300); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 200)
	n, _, _ := s.Read(f, 100, buf)
	for i := 0; i < n; i++ {
		if buf[i] != 0 {
			t.Fatalf("stale byte %d after truncate shrink+grow", i)
		}
	}
}

func TestRemoveIdempotent(t *testing.T) {
	s, _ := newStore(t)
	f := fh(9)
	_ = s.Write(f, 0, []byte("x"), false)
	s.Remove(f)
	s.Remove(f)
	if _, ok := s.Size(f); ok {
		t.Fatal("file survived remove")
	}
}

// TestRecoverFromLog rebuilds the map records from the journal after a
// manager failure — the dataless-server failover path of §2.3.
func TestRecoverFromLog(t *testing.T) {
	backing := storage.NewObjectStore()
	ms := wal.NewMemStore()
	log, _ := wal.Open(ms)
	s := NewStore(backing, 1, log)

	f1, f2 := fh(21), fh(22)
	if err := s.Write(f1, 0, []byte("file one contents"), true); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(f2, 0, bytes.Repeat([]byte("2"), 9000), true); err != nil {
		t.Fatal(err)
	}
	s.Remove(f1)
	_ = log.Sync()
	backing.CommitAll()

	// Failover: a fresh store over the same backing object + log replay.
	log2, err := wal.Open(ms.CrashCopy())
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(backing, 1, log2)
	if err := s2.Recover(log2); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Size(f1); ok {
		t.Fatal("removed file resurrected by recovery")
	}
	size, ok := s2.Size(f2)
	if !ok || size != 9000 {
		t.Fatalf("recovered size = %d ok=%v, want 9000", size, ok)
	}
	buf := make([]byte, 9000)
	n, _, err := s2.Read(f2, 0, buf)
	if err != nil || n != 9000 {
		t.Fatalf("recovered read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte("2"), 9000)) {
		t.Fatal("recovered content mismatch")
	}
}

// TestWriteReadProperty drives random offsets/sizes within the threshold
// region through write-then-read.
func TestWriteReadProperty(t *testing.T) {
	f := func(off uint16, size uint16) bool {
		s, _ := newStore(t)
		o := int64(off) % (MaxBlocks*LogicalBlock - 4096)
		n := int(size)%4096 + 1
		data := bytes.Repeat([]byte{byte(off)}, n)
		if err := s.Write(fh(1), o, data, false); err != nil {
			return false
		}
		buf := make([]byte, n)
		got, _, err := s.Read(fh(1), o, buf)
		return err == nil && got == n && bytes.Equal(buf, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPhysicalBytesAccounting(t *testing.T) {
	s, _ := newStore(t)
	_ = s.Write(fh(1), 0, make([]byte, 100), false) // 128
	_ = s.Write(fh(2), 0, make([]byte, 300), false) // 512
	if got := s.PhysicalBytes(); got != 128+512 {
		t.Fatalf("PhysicalBytes = %d, want 640", got)
	}
	if s.NumFiles() != 2 {
		t.Fatalf("NumFiles = %d", s.NumFiles())
	}
}
