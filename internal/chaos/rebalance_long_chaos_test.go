//go:build chaos_long

package chaos

// Nightly chaos-matrix scenarios (make nightly-chaos / .github/workflows
// nightly job). The matrix axes arrive via environment:
//
//	CHAOS_TRANSPORT   udp (default) | tcp  — tcp drives the load through
//	                  a record-marked wire gateway, the path real NFS
//	                  clients use
//	CHAOS_REPLICATION 1 (default) | 3      — k-way replica groups
//
// These runs are heavier than the PR-path versions of the same
// scenarios: more ballast, more foreground ops, and a full
// grow -> kill -> shrink cycle, with -count 3 -race in CI.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"slice/internal/client"
	"slice/internal/ensemble"
	"slice/internal/oncrpc"
	"slice/internal/wire"
	"slice/internal/workload"
)

func matrixTransport() string {
	if t := os.Getenv("CHAOS_TRANSPORT"); t != "" {
		return t
	}
	return "udp"
}

func matrixReplication() int {
	if s := os.Getenv("CHAOS_REPLICATION"); s != "" {
		if k, err := strconv.Atoi(s); err == nil && k > 0 {
			return k
		}
	}
	return 1
}

// matrixEnsemble builds the deployment the matrix axes describe and a
// client over the selected transport.
func matrixEnsemble(t *testing.T, nodes int) (*ensemble.Ensemble, *client.Client) {
	t.Helper()
	k := matrixReplication()
	e := newEnsemble(t, func(cfg *ensemble.Config) {
		cfg.StorageNodes = nodes * k
		cfg.Replication = k
		cfg.LogicalSites = 12
		if matrixTransport() == "tcp" {
			cfg.TCPListen = "127.0.0.1:0"
		}
	})
	var c *client.Client
	if matrixTransport() == "tcp" {
		conn, err := wire.Dial(fmt.Sprintf("127.0.0.1:%d", e.Gateways[0].Port()))
		if err != nil {
			t.Fatalf("dial gateway: %v", err)
		}
		c = client.NewWithConn(conn, client.Config{
			RPC: oncrpc.ClientConfig{Timeout: 250 * time.Millisecond, Retries: 9},
		})
		if err := c.Mount(); err != nil {
			t.Fatalf("mount over tcp: %v", err)
		}
		t.Cleanup(c.Close)
	} else {
		var err error
		c, err = e.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
	}
	return e, c
}

// TestMatrixGrowKillShrinkCycle is the nightly tentpole: under the
// matrix's transport and replication degree, grow the array by one
// stripe class, reboot an incoming node mid-copy, verify the workload
// never failed, then drain the same class back out — a full elastic
// round trip ending fsck-clean.
func TestMatrixGrowKillShrinkCycle(t *testing.T) {
	k := matrixReplication()
	e, c := matrixEnsemble(t, 4)

	if _, err := workload.DD(c, c.Root(), workload.DDConfig{
		Name: "ballast", Bytes: 16 << 20, Write: true,
	}); err != nil {
		t.Fatalf("ballast: %v", err)
	}

	var (
		wg     sync.WaitGroup
		sfsErr error
		stats  workload.SfsStats
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats, sfsErr = workload.Sfs(c, c.Root(), workload.SfsConfig{
			Files: 120, Ops: 3000, Prefix: "matrix-load", Seed: 17,
		})
	}()
	time.Sleep(20 * time.Millisecond)

	add := 2 * k // two stripe classes (k nodes each when replicated)
	growErr := make(chan error, 1)
	baseNodes := 4 * k
	go func() { growErr <- e.Grow(add) }()
	if !WaitFor(30*time.Second, func() bool {
		st := e.RebalanceStatus().State
		return (st == "running" && len(e.Storage) >= baseNodes+add) || st == "done"
	}) {
		t.Fatal("rebalance never started")
	}
	if e.RebalanceStatus().State == "running" {
		if _, err := e.Chaos().RestartStorage(baseNodes); err != nil {
			t.Fatalf("restart incoming node: %v", err)
		}
	}
	if err := <-growErr; err != nil {
		t.Fatalf("Grow(%d): %v", add, err)
	}
	wg.Wait()
	if sfsErr != nil {
		t.Fatalf("foreground mix failed during grow: %v", sfsErr)
	}
	if stats.ReadErrs != 0 {
		t.Fatalf("%d foreground reads returned wrong bytes", stats.ReadErrs)
	}
	FsckClean(t, e)

	// Read the ballast back whole before and after draining the class
	// out again.
	if dd, err := workload.DD(c, c.Root(), workload.DDConfig{
		Name: "ballast", Bytes: 16 << 20, Verify: true,
	}); err != nil || dd.Mismatch {
		t.Fatalf("ballast verify after grow: err %v mismatch %v", err, dd.Mismatch)
	}
	if err := e.Shrink(add); err != nil {
		t.Fatalf("Shrink(%d): %v", add, err)
	}
	if dd, err := workload.DD(c, c.Root(), workload.DDConfig{
		Name: "ballast", Bytes: 16 << 20, Verify: true,
	}); err != nil || dd.Mismatch {
		t.Fatalf("ballast verify after shrink: err %v mismatch %v", err, dd.Mismatch)
	}
	FsckClean(t, e)
}

// TestMatrixRepeatedElasticity cycles grow/shrink several times under
// load — topology transitions must compose without leaking pending
// state or corrupting placement.
func TestMatrixRepeatedElasticity(t *testing.T) {
	k := matrixReplication()
	e, c := matrixEnsemble(t, 4)
	if _, err := workload.DD(c, c.Root(), workload.DDConfig{
		Name: "cycle-ballast", Bytes: 4 << 20, Write: true,
	}); err != nil {
		t.Fatalf("ballast: %v", err)
	}
	// Two cycles: each grow takes fresh host-plan slots (drained nodes
	// stay parked), and k=3 must not run into the directory-server
	// host range.
	for cycle := 0; cycle < 2; cycle++ {
		if err := e.Grow(k); err != nil {
			t.Fatalf("cycle %d grow: %v", cycle, err)
		}
		if err := e.Shrink(k); err != nil {
			t.Fatalf("cycle %d shrink: %v", cycle, err)
		}
	}
	if dd, err := workload.DD(c, c.Root(), workload.DDConfig{
		Name: "cycle-ballast", Bytes: 4 << 20, Verify: true,
	}); err != nil || dd.Mismatch {
		t.Fatalf("ballast verify after cycles: err %v mismatch %v", err, dd.Mismatch)
	}
	FsckClean(t, e)
}
