// Versioned topology transitions and consistent-hash (ring) tables.
//
// A transition is a two-phase rebind of a Table: Begin publishes a
// *pending* binding next to the current one (bumping the version so
// µproxies re-resolve and start double-writing new data to both
// bindings), a background migrator copies old blocks, and Commit makes
// the pending binding current (or Abort discards it). Both phases are
// epoch-guarded: the epoch minted by Begin must be presented to
// Commit/Abort, so a crashed migration cannot commit a transition it
// no longer owns and the coordinator's intention probe can roll back a
// dead driver's transition without racing a live one.
//
// Ring tables place keys by consistent hashing (Chord's "roughly equal
// share with minimal movement" argument): each physical node projects a
// fixed set of pseudo-random points on a 64-bit ring derived only from
// its own address, and a key belongs to the successor point. Adding a
// node therefore only moves the keys that land on the new node's arcs;
// removing one only moves its own keys — no survivor-to-survivor
// shuffling. The name and small-file hash spaces use ring tables; the
// bulk-striping table stays modular (stripes want an even round-robin
// decluster, and PlanGrow/PlanShrink give it minimal movement at
// logical-site granularity instead).
package route

import (
	"fmt"
	"sort"

	"slice/internal/netsim"
	"slice/internal/replica"
)

// pendingState is the not-yet-committed half of a transition, carried
// inside the table snapshot so the data path sees (current, pending)
// consistently from a single atomic load.
type pendingState struct {
	sites []netsim.Addr // pending logical -> physical binding
	ring  []ringPoint   // pending ring (ring tables only)
	reps  *replica.Map  // replica groups under the pending binding (may be nil)
	epoch uint64
}

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	point uint64
	site  uint32
}

// ringVnodes is the number of ring points each physical node projects.
// More points smooth the per-node share (with 96 the max/mean load
// ratio stays under ~1.3 for small arrays) at a small lookup cost
// (binary search over n*96 points).
const ringVnodes = 96

// mix64 is the splitmix64 finalizer — a cheap full-avalanche mix so
// adjacent keys and adjacent vnode indices land on unrelated ring
// points.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nodeSeed derives a stable per-node seed from the address alone, so a
// node's ring points never depend on the rest of the membership — the
// property minimal movement rests on.
func nodeSeed(a netsim.Addr) uint64 {
	return mix64(uint64(a.Host)<<16 | uint64(a.Port))
}

// buildRing projects every site's points and sorts them.
func buildRing(sites []netsim.Addr) []ringPoint {
	ring := make([]ringPoint, 0, len(sites)*ringVnodes)
	for i, a := range sites {
		seed := nodeSeed(a)
		for j := 0; j < ringVnodes; j++ {
			ring = append(ring, ringPoint{
				point: mix64(seed + uint64(j)*0x9E3779B97F4A7C15),
				site:  uint32(i),
			})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].point != ring[j].point {
			return ring[i].point < ring[j].point
		}
		return ring[i].site < ring[j].site
	})
	return ring
}

// ringSite finds the successor point for a key (alloc-free binary
// search on the routing hot path).
func ringSite(ring []ringPoint, key uint64) uint32 {
	h := mix64(key)
	lo, hi := 0, len(ring)
	for lo < hi {
		mid := (lo + hi) / 2
		if ring[mid].point < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(ring) {
		lo = 0 // wrap: successor of the last point is the first
	}
	return ring[lo].site
}

// NewRingTable builds a consistent-hash table over the physical
// servers: one logical site per server, keys placed by ring successor.
// Swap/Begin/Commit preserve the minimal-movement property because
// each node's ring points depend only on its own address.
func NewRingTable(physical []netsim.Addr) *Table {
	t := &Table{}
	sites := append([]netsim.Addr(nil), physical...)
	t.state.Store(&tableState{sites: sites, ring: buildRing(sites), version: 1})
	return t
}

// Ring reports whether the table places keys by consistent hashing.
func (t *Table) Ring() bool {
	return t.state.Load().ring != nil
}

// ------------------------------------------------------------ transitions

// ErrTransitionPending is returned by Begin while another transition is
// still open; callers must Commit or Abort it first.
var ErrTransitionPending = fmt.Errorf("route: transition already pending")

// Begin opens a transition to a new binding and returns its epoch. For
// modular tables next is the complete logical→physical site list (use
// PlanGrow/PlanShrink to derive one with minimal movement); for ring
// tables it is the new physical server set. The current binding stays
// authoritative for reads; WriteTargets starts unioning both bindings.
// reps carries the replica groups the pending binding will run under
// (nil keeps the current map). The version bump makes retransmitting
// µproxies re-resolve in-flight requests.
func (t *Table) Begin(next []netsim.Addr, reps *replica.Map) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.state.Load()
	if cur.next != nil {
		return 0, ErrTransitionPending
	}
	if len(next) == 0 {
		return 0, ErrEmptyTable
	}
	pend := &pendingState{
		sites: append([]netsim.Addr(nil), next...),
		reps:  reps,
		epoch: cur.version + 1,
	}
	if cur.ring != nil {
		pend.ring = buildRing(pend.sites)
	}
	t.state.Store(&tableState{
		sites:   cur.sites,
		ring:    cur.ring,
		next:    pend,
		version: cur.version + 1,
	})
	return pend.epoch, nil
}

// Commit installs the pending binding as current, ending the
// transition. It returns false (and changes nothing) unless a
// transition with exactly this epoch is open — a migration driver that
// lost its transition to a coordinator-probe Abort cannot commit a
// half-copied binding.
func (t *Table) Commit(epoch uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.state.Load()
	if cur.next == nil || cur.next.epoch != epoch {
		return false
	}
	t.state.Store(&tableState{
		sites:   cur.next.sites,
		ring:    cur.next.ring,
		version: cur.version + 1,
	})
	return true
}

// Abort discards the pending binding, keeping the current one. Same
// epoch guard as Commit.
func (t *Table) Abort(epoch uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.state.Load()
	if cur.next == nil || cur.next.epoch != epoch {
		return false
	}
	t.state.Store(&tableState{
		sites:   cur.sites,
		ring:    cur.ring,
		version: cur.version + 1,
	})
	return true
}

// Transitioning reports whether a transition is open.
func (t *Table) Transitioning() bool {
	return t.state.Load().next != nil
}

// PendingEpoch returns the open transition's epoch (0: none).
func (t *Table) PendingEpoch() uint64 {
	if next := t.state.Load().next; next != nil {
		return next.epoch
	}
	return 0
}

// PendingReplicas returns the replica map the pending binding will run
// under, or nil when the transition keeps (or has no) replica groups.
func (t *Table) PendingReplicas() *replica.Map {
	if next := t.state.Load().next; next != nil {
		return next.reps
	}
	return nil
}

// PendingNumLogical returns the pending binding's logical site count
// (0: no transition).
func (t *Table) PendingNumLogical() int {
	if next := t.state.Load().next; next != nil {
		return len(next.sites)
	}
	return 0
}

// PendingSite returns the logical site a key will map to after the
// transition commits.
func (t *Table) PendingSite(key uint64) uint32 {
	next := t.state.Load().next
	if next == nil || len(next.sites) == 0 {
		return 0
	}
	if next.ring != nil {
		return ringSite(next.ring, key)
	}
	return uint32(key % uint64(len(next.sites)))
}

// PendingLookup resolves a pending logical site to its physical server.
func (t *Table) PendingLookup(site uint32) (netsim.Addr, error) {
	next := t.state.Load().next
	if next == nil || len(next.sites) == 0 {
		return netsim.Addr{}, ErrEmptyTable
	}
	return next.sites[int(site)%len(next.sites)], nil
}

// PendingPhysical returns the distinct physical servers of the pending
// binding, in first-appearance order (nil: no transition).
func (t *Table) PendingPhysical() []netsim.Addr {
	next := t.state.Load().next
	if next == nil {
		return nil
	}
	return distinctAddrs(next.sites)
}

// distinctAddrs returns the distinct addresses in first-appearance
// order.
func distinctAddrs(sites []netsim.Addr) []netsim.Addr {
	out := make([]netsim.Addr, 0, len(sites))
	seen := make(map[netsim.Addr]bool, len(sites))
	for _, a := range sites {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// --------------------------------------------------------------- planners

// PlanGrow derives the pending site list for adding servers: the
// binding is extended to `logical` sites (at least the current count)
// and the minimum number of sites move — every node ends within one of
// its fair share, and a site changes owner only when its old owner is
// over quota, so the moved fraction is exactly the consistent-hashing
// minimum at site granularity.
func PlanGrow(cur []netsim.Addr, add []netsim.Addr, logical int) ([]netsim.Addr, error) {
	if logical < len(cur) {
		logical = len(cur)
	}
	nodes := distinctAddrs(cur)
	for _, a := range add {
		dup := false
		for _, b := range nodes {
			if a == b {
				dup = true
				break
			}
		}
		if !dup {
			nodes = append(nodes, a)
		}
	}
	sites := make([]netsim.Addr, logical)
	copy(sites, cur)
	return rebind(sites, nodes, len(cur))
}

// PlanShrink derives the pending site list for removing servers: the
// logical site count is preserved, and only the sites bound to removed
// servers move (to the survivors with the most headroom).
func PlanShrink(cur []netsim.Addr, remove []netsim.Addr) ([]netsim.Addr, error) {
	removed := make(map[netsim.Addr]bool, len(remove))
	for _, a := range remove {
		removed[a] = true
	}
	var nodes []netsim.Addr
	for _, a := range distinctAddrs(cur) {
		if !removed[a] {
			nodes = append(nodes, a)
		}
	}
	sites := append([]netsim.Addr(nil), cur...)
	for i, a := range sites {
		if removed[a] {
			sites[i] = netsim.Addr{} // orphan: rebind below
		}
	}
	return rebind(sites, nodes, len(cur))
}

// rebind balances a partially-assigned site list over the node set with
// minimal movement: each node keeps up to its quota of the sites it
// already owns; everything beyond quota (and every unassigned site in
// [assigned, len)) is handed to the nodes still under quota, in node
// order. Sites at index >= assigned are treated as new (unowned).
func rebind(sites []netsim.Addr, nodes []netsim.Addr, assigned int) ([]netsim.Addr, error) {
	n := len(nodes)
	if n == 0 {
		return nil, ErrEmptyTable
	}
	base, extra := len(sites)/n, len(sites)%n
	quota := make(map[netsim.Addr]int, n)
	for i, a := range nodes {
		quota[a] = base
		if i < extra {
			quota[a]++
		}
	}
	var orphans []int
	for i := range sites {
		a := sites[i]
		if i >= assigned || a == (netsim.Addr{}) {
			orphans = append(orphans, i)
			continue
		}
		if q, ok := quota[a]; ok && q > 0 {
			quota[a] = q - 1
		} else {
			orphans = append(orphans, i) // over quota or node not in set
		}
	}
	next := 0
	for _, i := range orphans {
		for next < n && quota[nodes[next]] == 0 {
			next++
		}
		if next == n {
			return nil, fmt.Errorf("route: rebind quota exhausted")
		}
		sites[i] = nodes[next]
		quota[nodes[next]]--
	}
	return sites, nil
}
