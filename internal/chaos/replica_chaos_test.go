package chaos

import (
	"testing"
	"time"

	"slice/internal/ensemble"
	"slice/internal/oncrpc"
	"slice/internal/workload"
)

// newReplicatedEnsemble builds the fault-injection deployment with 2-way
// replicated storage: 4 nodes in 2 groups, group 1 = {node 2, node 3}.
// The small-file backing object lives on node 0, so killing group 1's
// last member never touches the unreplicated small-file path.
func newReplicatedEnsemble(t *testing.T, mutate func(*ensemble.Config)) *ensemble.Ensemble {
	return newEnsemble(t, func(cfg *ensemble.Config) {
		cfg.StorageNodes = 4
		cfg.Replication = 2
		cfg.ClientRPC = oncrpc.ClientConfig{Timeout: 25 * time.Millisecond, Retries: 40}
		if mutate != nil {
			mutate(cfg)
		}
	})
}

// TestReplicaKillMidWindowedBulkWrite: one member of a replica group
// dies — disk and all — in the middle of a windowed bulk write, in two
// beats: first the node blackholes (partition) until the stream
// demonstrably stalls against it, then the kill publishes the member
// removal. The write and its COMMIT barrier must complete with no
// client-visible error (stalled fan-outs retarget onto the survivor at
// their next retransmission), and after the member is reborn and
// resynced from its sibling, every group must be byte-identical and the
// namespace fsck-clean.
func TestReplicaKillMidWindowedBulkWrite(t *testing.T) {
	e := newReplicatedEnsemble(t, nil)
	ch := e.Chaos()
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, _, err := c.Create(c.Root(), "replica-bulk", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1024*1024)
	for i := range data {
		data[i] = byte(i*2654435761 + i>>11)
	}

	const slice = 96 * 1024
	write := func(off int) {
		end := off + slice
		if end > len(data) {
			end = len(data)
		}
		if _, err := c.Write(fh, uint64(off), data[off:end], false); err != nil {
			t.Fatalf("windowed write at %d across the kill: %v", off, err)
		}
	}
	// First third of the stream lands on the whole group.
	cut := len(data) / 3
	off := 0
	for ; off < cut; off += slice {
		write(off)
	}
	// First beat: the member stops answering but is still in the group.
	// The next slice's fan-outs to it stall in the write-behind window
	// and the client retransmits.
	ch.PartitionStorage(3)
	retrans := c.Retransmissions()
	write(off)
	off += slice
	for deadline := time.Now().Add(10 * time.Second); c.Retransmissions() == retrans; {
		if time.Now().After(deadline) {
			t.Fatal("bulk write never stalled against the dead member")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Second beat: the kill — disk discarded, member marked down. The
	// stalled chunks retarget onto the survivor at their next
	// retransmission; the rest of the stream never sees the corpse.
	killed, err := ch.KillReplicaUnderWrite(1)
	if err != nil {
		t.Fatal(err)
	}
	if killed != 3 {
		t.Fatalf("killed node %d, want 3 (last member of group 1)", killed)
	}
	for ; off < len(data); off += slice {
		write(off)
	}
	if _, err := c.Commit(fh); err != nil {
		t.Fatalf("commit barrier with a dead replica: %v", err)
	}

	// Rebirth: empty store, resynced from the surviving sibling before
	// the member serves or rejoins the group.
	if _, err := ch.RestartReplica(killed); err != nil {
		t.Fatalf("replica restart: %v", err)
	}
	ReplicaGroupsIdentical(t, e)
	VerifyBytes(t, e, c, fh, data)
	FsckClean(t, e)
}

// TestReplicaKillMidUntarUnderSfsMix: a replica member is killed while
// an untar streams namespace updates and an SFS-like mix (SPECsfs97 op
// shares, small-file skew) grinds the data path from a second client.
// Both workloads must complete without client-visible errors, no
// acknowledged entry may be lost, and after resync the groups are
// byte-identical and the namespace fsck-clean.
func TestReplicaKillMidUntarUnderSfsMix(t *testing.T) {
	e := newReplicatedEnsemble(t, nil)
	ch := e.Chaos()
	c, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sfsClient, err := e.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer sfsClient.Close()

	sfsDone := make(chan struct{})
	var sfsStats workload.SfsStats
	var sfsErr error
	go func() {
		defer close(sfsDone)
		sfsStats, sfsErr = workload.Sfs(sfsClient, sfsClient.Root(), workload.SfsConfig{
			Files: 24, Ops: 160, Seed: 7,
		})
	}()

	killAt := make(chan struct{})
	killDone := make(chan struct{})
	var once bool
	untarDone := make(chan struct{})
	var acked []Entry
	var untarErr error
	go func() {
		defer close(untarDone)
		acked, untarErr = Untar(c, c.Root(), UntarConfig{
			Dirs: 12, Files: 36,
			OpBudget: 15 * time.Second,
			OnEntry: func(n int) {
				if n == 10 && !once {
					once = true
					// Pause until the kill lands so a fast machine cannot
					// finish the untar before the fault exists.
					close(killAt)
					<-killDone
				}
			},
		})
	}()

	<-killAt
	killed, err := ch.KillReplicaUnderWrite(1)
	close(killDone)
	if err != nil {
		t.Fatal(err)
	}

	<-untarDone
	<-sfsDone
	if untarErr != nil {
		t.Fatalf("untar did not survive the replica kill: %v", untarErr)
	}
	if sfsErr != nil {
		t.Fatalf("sfs mix did not survive the replica kill: %v", sfsErr)
	}
	if sfsStats.ReadErrs != 0 {
		t.Fatalf("sfs mix saw %d read verification errors across the kill", sfsStats.ReadErrs)
	}
	if lost := VerifyAcked(c, 10*time.Second, acked); len(lost) != 0 {
		t.Fatalf("%d acknowledged entries lost across the replica kill: %v", len(lost), lost)
	}

	if _, err := ch.RestartReplica(killed); err != nil {
		t.Fatalf("replica restart: %v", err)
	}
	ReplicaGroupsIdentical(t, e)
	FsckClean(t, e)
}
