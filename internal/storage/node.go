package storage

import (
	"sync"
	"time"

	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/replica"
	"slice/internal/xdr"
)

// ObjProgram is the RPC program number of the raw-object extension service
// (remove/truncate/stat by handle), used by coordinators and file managers.
const (
	ObjProgram = 200101
	ObjVersion = 1
)

// Raw-object procedures.
const (
	ObjProcRemove   = 1
	ObjProcTruncate = 2
	ObjProcStat     = 3
)

// ObjectOf maps a file handle to the backing object identifier, the
// "external hash" of §4.2.
func ObjectOf(fh fhandle.Handle) ObjectID {
	return ObjectID(fhandle.HandleKey(fh))
}

// Node is a network storage node: an ObjectStore exported over RPC. It
// serves the NFS subset {NULL, READ, WRITE, COMMIT} addressed by file
// handle, plus the raw-object program.
//
// With a capability key configured, the node refuses requests whose
// handle does not carry a valid keyed fingerprint — the OBSD/NASD secure
// object model of §2.2, which lets the µproxy live outside the service
// trust boundary: clients cannot address storage directly, because only
// key holders (the µproxy, the coordinator) can mint capabilities.
type Node struct {
	store  *ObjectStore
	srv    *oncrpc.Server
	mu     sync.Mutex
	capKey []byte
	denied uint64

	// Replica identity (group, member slot), set by the deployment when
	// the array is replicated; informational plus peer-program gate.
	group, member uint32
	isReplica     bool

	// serviceTime paces the node: each request holds paceMu for this
	// long before being served, modelling a disk-arm/NIC capacity of
	// 1/serviceTime per node so scaling benchmarks measure fan-out, not
	// the simulator's infinite parallelism. Zero (the default) disables.
	serviceTime time.Duration
	paceMu      sync.Mutex
}

// NewNode starts a storage node on port, serving store.
func NewNode(port *netsim.Port, store *ObjectStore) *Node {
	n := &Node{store: store}
	n.srv = oncrpc.NewServer(port, oncrpc.HandlerFunc(n.serve))
	return n
}

// RequireCapability makes the node verify handle capabilities against
// key. A nil key disables verification (trusted-network mode).
func (n *Node) RequireCapability(key []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.capKey = append([]byte(nil), key...)
}

// DeniedRequests counts requests rejected for missing/bad capabilities.
func (n *Node) DeniedRequests() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.denied
}

// authorize verifies fh's capability under the configured key.
func (n *Node) authorize(fh fhandle.Handle) bool {
	n.mu.Lock()
	key := n.capKey
	n.mu.Unlock()
	if len(key) == 0 {
		return true
	}
	if fhandle.VerifyCapability(key, fh) {
		return true
	}
	n.mu.Lock()
	n.denied++
	n.mu.Unlock()
	return false
}

// SetReplica records the node's replica identity: group g, member slot
// m within it (0 = primary). The peer resync program only serves on
// nodes that know they are replicas.
func (n *Node) SetReplica(g, m uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.group, n.member, n.isReplica = g, m, true
}

// Replica returns the node's replica identity (group, member, set).
func (n *Node) Replica() (uint32, uint32, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.group, n.member, n.isReplica
}

// SetServiceTime paces the node at one request per d (0 disables).
func (n *Node) SetServiceTime(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.serviceTime = d
}

// pace serializes admission when a service time is configured.
func (n *Node) pace() {
	n.mu.Lock()
	d := n.serviceTime
	n.mu.Unlock()
	if d <= 0 {
		return
	}
	n.paceMu.Lock()
	time.Sleep(d)
	n.paceMu.Unlock()
}

// Store returns the node's object store (used by tests and by managers
// whose backing objects live on this node).
func (n *Node) Store() *ObjectStore { return n.store }

// Addr returns the node's network address.
func (n *Node) Addr() netsim.Addr { return n.srv.Addr() }

// SetObs attaches a histogram registry recording per-procedure handler
// latency (nil detaches).
func (n *Node) SetObs(reg *obs.Registry) {
	if reg == nil {
		n.srv.SetObserver(nil)
		return
	}
	n.srv.SetObserver(reg.ObserveRPC)
}

// Close shuts the node down.
func (n *Node) Close() { n.srv.Close() }

func (n *Node) serve(call oncrpc.Call, from netsim.Addr) (func(*xdr.Encoder), uint32) {
	switch call.Program {
	case nfsproto.Program:
		n.pace()
		return n.serveNFS(call)
	case ObjProgram:
		return n.serveObj(call)
	case replica.PeerProgram:
		return n.servePeer(call)
	default:
		return nil, oncrpc.AcceptProgUnavail
	}
}

func (n *Node) serveNFS(call oncrpc.Call) (func(*xdr.Encoder), uint32) {
	d := xdr.NewDecoder(call.Body)
	switch nfsproto.Proc(call.Proc) {
	case nfsproto.ProcNull:
		return func(e *xdr.Encoder) {}, oncrpc.AcceptSuccess

	case nfsproto.ProcRead:
		var args nfsproto.ReadArgs
		if err := args.Decode(d); err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		if !n.authorize(args.FH) {
			return (&nfsproto.ReadRes{Status: nfsproto.ErrAccess}).Encode, oncrpc.AcceptSuccess
		}
		res := n.read(&args)
		return res.Encode, oncrpc.AcceptSuccess

	case nfsproto.ProcWrite:
		var args nfsproto.WriteArgs
		if err := args.Decode(d); err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		if !n.authorize(args.FH) {
			return (&nfsproto.WriteRes{Status: nfsproto.ErrAccess}).Encode, oncrpc.AcceptSuccess
		}
		res := n.write(&args)
		return res.Encode, oncrpc.AcceptSuccess

	case nfsproto.ProcCommit:
		var args nfsproto.CommitArgs
		if err := args.Decode(d); err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		if !n.authorize(args.FH) {
			return (&nfsproto.CommitRes{Status: nfsproto.ErrAccess}).Encode, oncrpc.AcceptSuccess
		}
		res := n.commit(&args)
		return res.Encode, oncrpc.AcceptSuccess

	default:
		// Storage nodes serve only the bulk I/O subset; anything else
		// was misrouted.
		return nil, oncrpc.AcceptProcUnavail
	}
}

// read serves READ. The reply carries no attributes: in the Slice
// architecture the µproxy patches cached attributes into I/O responses
// (§4.1), because storage nodes do not hold file attributes.
func (n *Node) read(args *nfsproto.ReadArgs) *nfsproto.ReadRes {
	buf := make([]byte, args.Count)
	cnt, eof, err := n.store.ReadAt(ObjectOf(args.FH), int64(args.Offset), buf)
	if err != nil {
		// Reading an object that has never been written is a read of a
		// hole in a sparse file: return zeroes only if the file exists
		// somewhere else. The storage node cannot know the file size, so
		// it reports EOF at its local object; the client's view of size
		// comes from the attributes the µproxy maintains.
		return &nfsproto.ReadRes{Status: nfsproto.OK, Count: 0, EOF: true, Data: nil}
	}
	return &nfsproto.ReadRes{
		Status: nfsproto.OK,
		Count:  uint32(cnt),
		EOF:    eof,
		Data:   buf[:cnt],
	}
}

func (n *Node) write(args *nfsproto.WriteArgs) *nfsproto.WriteRes {
	cnt := args.Count
	if int(cnt) > len(args.Data) {
		cnt = uint32(len(args.Data))
	}
	stable := args.Stable != nfsproto.Unstable
	if err := n.store.WriteAt(ObjectOf(args.FH), int64(args.Offset), args.Data[:cnt], stable); err != nil {
		return &nfsproto.WriteRes{Status: nfsproto.ErrIO}
	}
	committed := uint32(nfsproto.Unstable)
	if stable {
		committed = nfsproto.FileSync
	}
	return &nfsproto.WriteRes{
		Status:    nfsproto.OK,
		Count:     cnt,
		Committed: committed,
		Verf:      n.store.Verifier(),
	}
}

func (n *Node) commit(args *nfsproto.CommitArgs) *nfsproto.CommitRes {
	verf := n.store.Commit(ObjectOf(args.FH))
	return &nfsproto.CommitRes{Status: nfsproto.OK, Verf: verf}
}

// --------------------------------------------------- raw-object program

// ObjStatRes is the result of ObjProcStat.
type ObjStatRes struct {
	Status nfsproto.Status
	Size   uint64
	Used   uint64
}

// Encode appends the result to e.
func (r *ObjStatRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(r.Status))
	if r.Status == nfsproto.OK {
		e.PutUint64(r.Size)
		e.PutUint64(r.Used)
	}
}

// Decode reads the result from d.
func (r *ObjStatRes) Decode(d *xdr.Decoder) error {
	s, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Status = nfsproto.Status(s)
	if r.Status != nfsproto.OK {
		return nil
	}
	if r.Size, err = d.Uint64(); err != nil {
		return err
	}
	r.Used, err = d.Uint64()
	return err
}

func (n *Node) serveObj(call oncrpc.Call) (func(*xdr.Encoder), uint32) {
	d := xdr.NewDecoder(call.Body)
	fh, err := fhandle.Decode(d)
	if err != nil {
		return nil, oncrpc.AcceptGarbageArgs
	}
	if !n.authorize(fh) {
		return func(e *xdr.Encoder) { e.PutUint32(uint32(nfsproto.ErrAccess)) }, oncrpc.AcceptSuccess
	}
	id := ObjectOf(fh)
	switch call.Proc {
	case ObjProcRemove:
		n.store.Remove(id)
		return func(e *xdr.Encoder) { e.PutUint32(uint32(nfsproto.OK)) }, oncrpc.AcceptSuccess

	case ObjProcTruncate:
		size, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		st := nfsproto.OK
		if err := n.store.Truncate(id, int64(size)); err != nil {
			st = nfsproto.ErrInval
		}
		return func(e *xdr.Encoder) { e.PutUint32(uint32(st)) }, oncrpc.AcceptSuccess

	case ObjProcStat:
		size, ok := n.store.Size(id)
		res := ObjStatRes{Status: nfsproto.OK, Size: uint64(size), Used: uint64(n.store.Used(id))}
		if !ok {
			res.Status = nfsproto.ErrNoEnt
		}
		return res.Encode, oncrpc.AcceptSuccess

	default:
		return nil, oncrpc.AcceptProcUnavail
	}
}

// -------------------------------------------------- replica peer program
//
// Besides the list/read procs the resync puller uses, the program
// carries write/remove/truncate so the rebalance driver (a peer inside
// the trust boundary, holding the same bearer token) can push objects
// onto the nodes a topology transition adds and scrub ghosts it finds
// during verification.

// peerAuthorized checks the peer-program bearer token. The token is
// derived from the capability key, which never leaves the trust
// boundary, so only the service's own elements can enumerate or bulk-
// read raw objects.
func (n *Node) peerAuthorized(token uint64) bool {
	n.mu.Lock()
	key := n.capKey
	n.mu.Unlock()
	if len(key) == 0 || token == replica.PeerToken(key) {
		return true
	}
	n.mu.Lock()
	n.denied++
	n.mu.Unlock()
	return false
}

// servePeer answers the replica resync program (replica.PeerProgram): a
// restarting group sibling lists this node's objects and reads their
// bytes back in bulk.
func (n *Node) servePeer(call oncrpc.Call) (func(*xdr.Encoder), uint32) {
	d := xdr.NewDecoder(call.Body)
	token, err := d.Uint64()
	if err != nil {
		return nil, oncrpc.AcceptGarbageArgs
	}
	if !n.peerAuthorized(token) {
		return func(e *xdr.Encoder) { e.PutUint32(replica.PeerDenied) }, oncrpc.AcceptSuccess
	}
	switch call.Proc {
	case replica.PeerProcList:
		after, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		max, err := d.Uint32()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		if max > replica.PeerListMax {
			max = replica.PeerListMax
		}
		ents := n.store.ListAfter(ObjectID(after), int(max))
		return func(e *xdr.Encoder) {
			e.PutUint32(replica.PeerOK)
			e.PutUint32(uint32(len(ents)))
			for _, ent := range ents {
				e.PutUint64(uint64(ent.ID))
				e.PutUint64(uint64(ent.Size))
			}
		}, oncrpc.AcceptSuccess

	case replica.PeerProcRead:
		id, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		off, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		count, err := d.Uint32()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		if count > replica.PeerChunk {
			count = replica.PeerChunk
		}
		buf := make([]byte, count)
		cnt, _, rerr := n.store.ReadAt(ObjectID(id), int64(off), buf)
		if rerr != nil {
			return func(e *xdr.Encoder) { e.PutUint32(replica.PeerNoObj) }, oncrpc.AcceptSuccess
		}
		return func(e *xdr.Encoder) {
			e.PutUint32(replica.PeerOK)
			e.PutOpaque(buf[:cnt])
		}, oncrpc.AcceptSuccess

	case replica.PeerProcWrite:
		id, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		off, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		data, err := d.Opaque()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		if werr := n.store.WriteAt(ObjectID(id), int64(off), data, true); werr != nil {
			return func(e *xdr.Encoder) { e.PutUint32(replica.PeerNoObj) }, oncrpc.AcceptSuccess
		}
		return func(e *xdr.Encoder) { e.PutUint32(replica.PeerOK) }, oncrpc.AcceptSuccess

	case replica.PeerProcRemove:
		id, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		n.store.Remove(ObjectID(id))
		return func(e *xdr.Encoder) { e.PutUint32(replica.PeerOK) }, oncrpc.AcceptSuccess

	case replica.PeerProcTruncate:
		id, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		size, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		if terr := n.store.Truncate(ObjectID(id), int64(size)); terr != nil {
			return func(e *xdr.Encoder) { e.PutUint32(replica.PeerNoObj) }, oncrpc.AcceptSuccess
		}
		return func(e *xdr.Encoder) { e.PutUint32(replica.PeerOK) }, oncrpc.AcceptSuccess

	default:
		return nil, oncrpc.AcceptProcUnavail
	}
}
