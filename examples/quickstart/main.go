// Quickstart: build an in-process Slice ensemble, mount it through the
// interposed µproxy, and do ordinary file work — the five-minute tour of
// the public API.
package main

import (
	"fmt"
	"log"

	"slice/internal/ensemble"
	"slice/internal/route"
)

func main() {
	// An ensemble is the whole paper in one value: storage nodes, a
	// block-service coordinator, directory servers, small-file servers,
	// and the µproxy that presents them as one virtual NFS server.
	e, err := ensemble.New(ensemble.Config{
		StorageNodes:     4,
		DirServers:       2,
		SmallFileServers: 2,
		Coordinator:      true,
		NameKind:         route.MkdirSwitching,
		MkdirP:           0.25, // redirect 1 in 4 mkdirs to spread load
	})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()

	// Clients speak plain NFS to one virtual address; they never learn
	// the ensemble exists.
	c, err := e.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("mounted volume, root %v\n", c.Root())

	// Namespace work routes to the directory servers.
	docs, err := c.MkdirAll(c.Root(), "home", "ari", "docs")
	if err != nil {
		log.Fatal(err)
	}
	fh, _, err := c.Create(docs, "notes.txt", 0o644, true)
	if err != nil {
		log.Fatal(err)
	}

	// Small writes land on a small-file server; large files stripe over
	// the storage array — the µproxy splits the traffic at the 64KB
	// threshold without the client doing anything.
	if err := c.WriteFile(fh, []byte("interposed request routing!\n")); err != nil {
		log.Fatal(err)
	}
	data, err := c.ReadAll(fh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %s", data)

	big, _, err := c.Create(docs, "big.bin", 0o644, true)
	if err != nil {
		log.Fatal(err)
	}
	blob := make([]byte, 256*1024)
	for i := range blob {
		blob[i] = byte(i)
	}
	if err := c.WriteFile(big, blob); err != nil {
		log.Fatal(err)
	}
	at, err := c.GetAttr(big)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("big.bin: %d bytes\n", at.Size)

	// Show where the bytes actually went.
	for i, n := range e.Storage {
		fmt.Printf("storage node %d: %6.1f KB\n", i, float64(n.Store().PhysicalBytes())/1024)
	}
	for i, s := range e.Small {
		fmt.Printf("small-file server %d: %d files, %d bytes physical\n",
			i, s.Store().NumFiles(), s.Store().PhysicalBytes())
	}

	ents, err := c.ReadDir(docs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("docs/:")
	for _, ent := range ents {
		fmt.Printf("  %s\n", ent.Name)
	}

	st := e.Proxy.Stats()
	fmt.Printf("µproxy handled %d requests, %d responses, absorbed %d commits\n",
		st.Requests, st.Responses, st.Absorbed)
}
