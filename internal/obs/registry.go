package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Registry names the histograms of one component ("uproxy", "dirsrv[0]",
// "coord", ...). Components resolve their histogram pointers once at
// construction; the registry lock is never on a data path.
type Registry struct {
	component string

	mu    sync.Mutex
	hists map[string]*Histogram
	order []string
}

// NewRegistry creates a registry for the named component.
func NewRegistry(component string) *Registry {
	return &Registry{component: component, hists: make(map[string]*Histogram)}
}

// Component returns the component name the registry was created with.
func (r *Registry) Component() string { return r.component }

// Hist returns the named histogram, creating it on first use. Callers
// keep the returned pointer; Record on it never touches the registry.
func (r *Registry) Hist(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := new(Histogram)
	r.hists[name] = h
	r.order = append(r.order, name)
	return h
}

// Snapshot copies every histogram in the registry.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	hists := make([]*Histogram, len(names))
	for i, n := range names {
		hists[i] = r.hists[n]
	}
	r.mu.Unlock()

	s := RegistrySnapshot{Component: r.component, Hists: make(map[string]HistSnapshot, len(names))}
	for i, n := range names {
		s.Hists[n] = hists[i].Snapshot()
	}
	return s
}

// WriteText writes the registry in the text exposition format, one
// histogram per line.
func (r *Registry) WriteText(w io.Writer) {
	s := r.Snapshot()
	s.WriteText(w)
}

// RegistrySnapshot is a point-in-time copy of one component's histograms.
type RegistrySnapshot struct {
	Component string                  `json:"component"`
	Hists     map[string]HistSnapshot `json:"hists"`
}

// WriteText writes the snapshot in the text exposition format:
//
//	component name count=N p50=... p95=... p99=... max=...
func (s RegistrySnapshot) WriteText(w io.Writer) {
	for _, name := range sortedKeys(s.Hists) {
		h := s.Hists[name]
		if h.Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "%s %s count=%d p50=%s p95=%s p99=%s max=%s\n",
			s.Component, name, h.Count(),
			Nanos(h.Percentile(0.50)), Nanos(h.Percentile(0.95)),
			Nanos(h.Percentile(0.99)), Nanos(h.Max()))
	}
}

func sortedKeys(m map[string]HistSnapshot) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MarshalJSON encodes only the non-empty buckets, keyed by bucket index,
// keeping cluster snapshots compact enough to fit one datagram.
func (s HistSnapshot) MarshalJSON() ([]byte, error) {
	m := make(map[string]uint64)
	for i, b := range s.Buckets {
		if b != 0 {
			m[strconv.Itoa(i)] = b
		}
	}
	return json.Marshal(struct {
		B map[string]uint64 `json:"b"`
	}{m})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (s *HistSnapshot) UnmarshalJSON(data []byte) error {
	var wire struct {
		B map[string]uint64 `json:"b"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	*s = HistSnapshot{}
	for k, v := range wire.B {
		i, err := strconv.Atoi(k)
		if err != nil || i < 0 || i >= NumBuckets {
			return fmt.Errorf("obs: bad bucket index %q", k)
		}
		s.Buckets[i] = v
	}
	return nil
}
