// Package server implements the monolithic single-node NFS server used as
// the experimental baseline: the analogue of the FreeBSD server exporting
// a memory file system (N-MFS in Figure 3) or a CCD-concatenated disk
// volume (Figure 5). All name space, attribute, and data operations are
// served by one node under one lock — exactly the bottleneck the Slice
// architecture decomposes.
package server

import (
	"sort"
	"sync"
	"time"

	"slice/internal/attr"
	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/obs"
	"slice/internal/oncrpc"
	"slice/internal/xdr"
)

// mount protocol constants (shared with dirsrv).
const (
	mountProgram = 100005
	mountProcMnt = 1
)

// node is one file, directory, or symbolic link.
type node struct {
	at       attr.Attr
	data     []byte
	children map[string]uint64 // name -> fileID (directories)
	target   string            // symlink target
}

// Server is a single-volume in-memory NFS server.
type Server struct {
	mu     sync.Mutex
	nodes  map[uint64]*node
	nextID uint64
	root   fhandle.Handle
	vol    uint32
	clock  func() attr.Time
	ops    uint64

	srv *oncrpc.Server
}

// New starts a baseline server on port, creating an empty volume root.
func New(port *netsim.Port, volume uint32, clock func() attr.Time) *Server {
	s := &Server{
		nodes:  make(map[uint64]*node),
		nextID: 1,
		vol:    volume,
		clock:  clock,
	}
	now := s.now()
	s.root = fhandle.Handle{Volume: volume, FileID: 1, Type: uint8(attr.TypeDir), CellKey: 1, Gen: 1}
	s.nodes[1] = &node{
		at: attr.Attr{Type: attr.TypeDir, Mode: 0o755, Nlink: 2, FileID: 1,
			Atime: now, Mtime: now, Ctime: now},
		children: make(map[string]uint64),
	}
	s.srv = oncrpc.NewServer(port, oncrpc.HandlerFunc(s.serve))
	return s
}

// Addr returns the server address.
func (s *Server) Addr() netsim.Addr { return s.srv.Addr() }

// SetObs attaches a histogram registry recording per-procedure handler
// latency (nil detaches), so the baseline server exposes the same
// op-class histograms as the decomposed ensemble.
func (s *Server) SetObs(reg *obs.Registry) {
	if reg == nil {
		s.srv.SetObserver(nil)
		return
	}
	s.srv.SetObserver(reg.ObserveRPC)
}

// Root returns the volume root handle.
func (s *Server) Root() fhandle.Handle { return s.root }

// Ops returns the number of NFS operations served.
func (s *Server) Ops() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// Close stops the server.
func (s *Server) Close() { s.srv.Close() }

func (s *Server) now() attr.Time {
	if s.clock != nil {
		return s.clock()
	}
	return attr.FromGo(time.Now())
}

func (s *Server) fh(id uint64, t attr.FileType) fhandle.Handle {
	return fhandle.Handle{Volume: s.vol, FileID: id, Type: uint8(t), CellKey: id, Gen: 1}
}

func (s *Server) serve(call oncrpc.Call, from netsim.Addr) (func(*xdr.Encoder), uint32) {
	if call.Program == mountProgram {
		if call.Proc != mountProcMnt {
			return nil, oncrpc.AcceptProcUnavail
		}
		root := s.root
		return func(e *xdr.Encoder) {
			e.PutUint32(uint32(nfsproto.OK))
			root.Encode(e)
		}, oncrpc.AcceptSuccess
	}
	if call.Program != nfsproto.Program {
		return nil, oncrpc.AcceptProgUnavail
	}
	s.mu.Lock()
	s.ops++
	s.mu.Unlock()

	d := xdr.NewDecoder(call.Body)
	run := func(args nfsproto.Msg, f func() nfsproto.Msg) (func(*xdr.Encoder), uint32) {
		if err := args.Decode(d); err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		return f().Encode, oncrpc.AcceptSuccess
	}

	switch nfsproto.Proc(call.Proc) {
	case nfsproto.ProcNull:
		return func(e *xdr.Encoder) {}, oncrpc.AcceptSuccess
	case nfsproto.ProcGetAttr:
		var a nfsproto.GetAttrArgs
		return run(&a, func() nfsproto.Msg { return s.getattr(&a) })
	case nfsproto.ProcSetAttr:
		var a nfsproto.SetAttrArgs
		return run(&a, func() nfsproto.Msg { return s.setattr(&a) })
	case nfsproto.ProcLookup:
		var a nfsproto.LookupArgs
		return run(&a, func() nfsproto.Msg { return s.lookup(&a) })
	case nfsproto.ProcAccess:
		var a nfsproto.AccessArgs
		return run(&a, func() nfsproto.Msg { return s.access(&a) })
	case nfsproto.ProcRead:
		var a nfsproto.ReadArgs
		return run(&a, func() nfsproto.Msg { return s.read(&a) })
	case nfsproto.ProcWrite:
		var a nfsproto.WriteArgs
		return run(&a, func() nfsproto.Msg { return s.write(&a) })
	case nfsproto.ProcCreate:
		var a nfsproto.CreateArgs
		return run(&a, func() nfsproto.Msg { return s.create(&a, attr.TypeReg) })
	case nfsproto.ProcSymlink:
		var a nfsproto.SymlinkArgs
		return run(&a, func() nfsproto.Msg { return s.symlink(&a) })
	case nfsproto.ProcReadLink:
		var a nfsproto.ReadLinkArgs
		return run(&a, func() nfsproto.Msg { return s.readlink(&a) })
	case nfsproto.ProcMkdir:
		var a nfsproto.CreateArgs
		return run(&a, func() nfsproto.Msg { return s.create(&a, attr.TypeDir) })
	case nfsproto.ProcRemove:
		var a nfsproto.RemoveArgs
		return run(&a, func() nfsproto.Msg { return s.remove(&a, false) })
	case nfsproto.ProcRmdir:
		var a nfsproto.RemoveArgs
		return run(&a, func() nfsproto.Msg { return s.remove(&a, true) })
	case nfsproto.ProcRename:
		var a nfsproto.RenameArgs
		return run(&a, func() nfsproto.Msg { return s.rename(&a) })
	case nfsproto.ProcLink:
		var a nfsproto.LinkArgs
		return run(&a, func() nfsproto.Msg { return s.link(&a) })
	case nfsproto.ProcReadDir:
		var a nfsproto.ReadDirArgs
		return run(&a, func() nfsproto.Msg { return s.readdir(&a) })
	case nfsproto.ProcFsStat:
		var a nfsproto.FsStatArgs
		return run(&a, func() nfsproto.Msg { return s.fsstat(&a) })
	case nfsproto.ProcCommit:
		var a nfsproto.CommitArgs
		return run(&a, func() nfsproto.Msg {
			// All writes are memory-resident; commit is a no-op.
			return &nfsproto.CommitRes{Status: nfsproto.OK, Verf: 1}
		})
	default:
		return nil, oncrpc.AcceptProcUnavail
	}
}

func (s *Server) getattr(a *nfsproto.GetAttrArgs) *nfsproto.GetAttrRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nodes[a.FH.FileID]
	if n == nil {
		return &nfsproto.GetAttrRes{Status: nfsproto.ErrStale}
	}
	return &nfsproto.GetAttrRes{Status: nfsproto.OK, Attr: n.at}
}

func (s *Server) setattr(a *nfsproto.SetAttrArgs) *nfsproto.SetAttrRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nodes[a.FH.FileID]
	if n == nil {
		return &nfsproto.SetAttrRes{Status: nfsproto.ErrStale}
	}
	a.Sattr.Apply(&n.at, s.now())
	if a.Sattr.SetSize {
		size := int(a.Sattr.Size)
		if size <= len(n.data) {
			n.data = n.data[:size]
		} else {
			n.data = append(n.data, make([]byte, size-len(n.data))...)
		}
	}
	return &nfsproto.SetAttrRes{Status: nfsproto.OK, Attr: nfsproto.Some(n.at)}
}

func (s *Server) lookup(a *nfsproto.LookupArgs) *nfsproto.LookupRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.nodes[a.Dir.FileID]
	if dir == nil || dir.children == nil {
		return &nfsproto.LookupRes{Status: nfsproto.ErrNotDir}
	}
	id, ok := dir.children[a.Name]
	if !ok {
		return &nfsproto.LookupRes{Status: nfsproto.ErrNoEnt, DirAttr: nfsproto.Some(dir.at)}
	}
	child := s.nodes[id]
	return &nfsproto.LookupRes{
		Status:  nfsproto.OK,
		FH:      s.fh(id, child.at.Type),
		Attr:    nfsproto.Some(child.at),
		DirAttr: nfsproto.Some(dir.at),
	}
}

func (s *Server) access(a *nfsproto.AccessArgs) *nfsproto.AccessRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nodes[a.FH.FileID]
	if n == nil {
		return &nfsproto.AccessRes{Status: nfsproto.ErrStale}
	}
	return &nfsproto.AccessRes{Status: nfsproto.OK, Attr: nfsproto.Some(n.at), Access: a.Access}
}

func (s *Server) read(a *nfsproto.ReadArgs) *nfsproto.ReadRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nodes[a.FH.FileID]
	if n == nil {
		return &nfsproto.ReadRes{Status: nfsproto.ErrStale}
	}
	now := s.now()
	n.at.Atime = now
	off := int(a.Offset)
	if off >= len(n.data) {
		return &nfsproto.ReadRes{Status: nfsproto.OK, Attr: nfsproto.Some(n.at), EOF: true}
	}
	end := off + int(a.Count)
	if end > len(n.data) {
		end = len(n.data)
	}
	data := make([]byte, end-off)
	copy(data, n.data[off:end])
	return &nfsproto.ReadRes{
		Status: nfsproto.OK, Attr: nfsproto.Some(n.at),
		Count: uint32(len(data)), EOF: end == len(n.data), Data: data,
	}
}

func (s *Server) write(a *nfsproto.WriteArgs) *nfsproto.WriteRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nodes[a.FH.FileID]
	if n == nil {
		return &nfsproto.WriteRes{Status: nfsproto.ErrStale}
	}
	cnt := int(a.Count)
	if cnt > len(a.Data) {
		cnt = len(a.Data)
	}
	end := int(a.Offset) + cnt
	if end > len(n.data) {
		n.data = append(n.data, make([]byte, end-len(n.data))...)
	}
	copy(n.data[a.Offset:end], a.Data[:cnt])
	now := s.now()
	n.at.Mtime = now
	n.at.Ctime = now
	n.at.Size = uint64(len(n.data))
	n.at.Used = n.at.Size
	return &nfsproto.WriteRes{
		Status: nfsproto.OK, Attr: nfsproto.Some(n.at),
		Count: uint32(cnt), Committed: nfsproto.FileSync, Verf: 1,
	}
}

func (s *Server) create(a *nfsproto.CreateArgs, t attr.FileType) *nfsproto.CreateRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.nodes[a.Dir.FileID]
	if dir == nil || dir.children == nil {
		return &nfsproto.CreateRes{Status: nfsproto.ErrNotDir}
	}
	if id, ok := dir.children[a.Name]; ok {
		if a.Exclusive || t == attr.TypeDir {
			return &nfsproto.CreateRes{Status: nfsproto.ErrExist, DirAttr: nfsproto.Some(dir.at)}
		}
		ex := s.nodes[id]
		return &nfsproto.CreateRes{
			Status: nfsproto.OK, FH: s.fh(id, ex.at.Type),
			Attr: nfsproto.Some(ex.at), DirAttr: nfsproto.Some(dir.at),
		}
	}
	s.nextID++
	id := s.nextID
	now := s.now()
	mode := uint32(0o644)
	nlink := uint32(1)
	var children map[string]uint64
	if t == attr.TypeDir {
		mode = 0o755
		nlink = 2
		children = make(map[string]uint64)
		dir.at.Nlink++
	}
	if a.Sattr.SetMode {
		mode = a.Sattr.Mode
	}
	n := &node{
		at: attr.Attr{Type: t, Mode: mode, Nlink: nlink, FileID: id,
			UID: a.Sattr.UID, GID: a.Sattr.GID,
			Atime: now, Mtime: now, Ctime: now},
		children: children,
	}
	s.nodes[id] = n
	dir.children[a.Name] = id
	dir.at.Mtime = now
	dir.at.Ctime = now
	return &nfsproto.CreateRes{
		Status: nfsproto.OK, FH: s.fh(id, t),
		Attr: nfsproto.Some(n.at), DirAttr: nfsproto.Some(dir.at),
	}
}

func (s *Server) symlink(a *nfsproto.SymlinkArgs) *nfsproto.CreateRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.nodes[a.Dir.FileID]
	if dir == nil || dir.children == nil {
		return &nfsproto.CreateRes{Status: nfsproto.ErrNotDir}
	}
	if _, exists := dir.children[a.Name]; exists {
		return &nfsproto.CreateRes{Status: nfsproto.ErrExist, DirAttr: nfsproto.Some(dir.at)}
	}
	s.nextID++
	id := s.nextID
	now := s.now()
	n := &node{
		at: attr.Attr{Type: attr.TypeLink, Mode: 0o777, Nlink: 1, FileID: id,
			Size: uint64(len(a.Target)), Used: uint64(len(a.Target)),
			Atime: now, Mtime: now, Ctime: now},
		target: a.Target,
	}
	s.nodes[id] = n
	dir.children[a.Name] = id
	dir.at.Mtime = now
	dir.at.Ctime = now
	return &nfsproto.CreateRes{
		Status: nfsproto.OK, FH: s.fh(id, attr.TypeLink),
		Attr: nfsproto.Some(n.at), DirAttr: nfsproto.Some(dir.at),
	}
}

func (s *Server) readlink(a *nfsproto.ReadLinkArgs) *nfsproto.ReadLinkRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nodes[a.FH.FileID]
	if n == nil {
		return &nfsproto.ReadLinkRes{Status: nfsproto.ErrStale}
	}
	if n.at.Type != attr.TypeLink {
		return &nfsproto.ReadLinkRes{Status: nfsproto.ErrInval, Attr: nfsproto.Some(n.at)}
	}
	n.at.Atime = s.now()
	return &nfsproto.ReadLinkRes{Status: nfsproto.OK, Attr: nfsproto.Some(n.at), Target: n.target}
}

func (s *Server) remove(a *nfsproto.RemoveArgs, wantDir bool) *nfsproto.RemoveRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.nodes[a.Dir.FileID]
	if dir == nil || dir.children == nil {
		return &nfsproto.RemoveRes{Status: nfsproto.ErrNotDir}
	}
	id, ok := dir.children[a.Name]
	if !ok {
		return &nfsproto.RemoveRes{Status: nfsproto.ErrNoEnt, DirAttr: nfsproto.Some(dir.at)}
	}
	child := s.nodes[id]
	isDir := child.at.Type == attr.TypeDir
	if wantDir && !isDir {
		return &nfsproto.RemoveRes{Status: nfsproto.ErrNotDir, DirAttr: nfsproto.Some(dir.at)}
	}
	if !wantDir && isDir {
		return &nfsproto.RemoveRes{Status: nfsproto.ErrIsDir, DirAttr: nfsproto.Some(dir.at)}
	}
	if wantDir && len(child.children) > 0 {
		return &nfsproto.RemoveRes{Status: nfsproto.ErrNotEmpty, DirAttr: nfsproto.Some(dir.at)}
	}
	delete(dir.children, a.Name)
	now := s.now()
	dir.at.Mtime = now
	dir.at.Ctime = now
	if isDir {
		if dir.at.Nlink > 2 {
			dir.at.Nlink--
		}
		delete(s.nodes, id)
	} else {
		child.at.Nlink--
		if child.at.Nlink == 0 {
			delete(s.nodes, id)
		}
	}
	return &nfsproto.RemoveRes{Status: nfsproto.OK, DirAttr: nfsproto.Some(dir.at)}
}

func (s *Server) rename(a *nfsproto.RenameArgs) *nfsproto.RenameRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	from := s.nodes[a.FromDir.FileID]
	to := s.nodes[a.ToDir.FileID]
	if from == nil || from.children == nil || to == nil || to.children == nil {
		return &nfsproto.RenameRes{Status: nfsproto.ErrNotDir}
	}
	id, ok := from.children[a.FromName]
	if !ok {
		return &nfsproto.RenameRes{Status: nfsproto.ErrNoEnt, FromDirAttr: nfsproto.Some(from.at)}
	}
	if _, exists := to.children[a.ToName]; exists {
		return &nfsproto.RenameRes{Status: nfsproto.ErrExist,
			FromDirAttr: nfsproto.Some(from.at), ToDirAttr: nfsproto.Some(to.at)}
	}
	delete(from.children, a.FromName)
	to.children[a.ToName] = id
	now := s.now()
	from.at.Mtime = now
	to.at.Mtime = now
	if s.nodes[id].at.Type == attr.TypeDir && a.FromDir.FileID != a.ToDir.FileID {
		if from.at.Nlink > 2 {
			from.at.Nlink--
		}
		to.at.Nlink++
	}
	return &nfsproto.RenameRes{Status: nfsproto.OK,
		FromDirAttr: nfsproto.Some(from.at), ToDirAttr: nfsproto.Some(to.at)}
}

func (s *Server) link(a *nfsproto.LinkArgs) *nfsproto.LinkRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nodes[a.FH.FileID]
	dir := s.nodes[a.Dir.FileID]
	if n == nil {
		return &nfsproto.LinkRes{Status: nfsproto.ErrStale}
	}
	if n.at.Type == attr.TypeDir {
		return &nfsproto.LinkRes{Status: nfsproto.ErrIsDir}
	}
	if dir == nil || dir.children == nil {
		return &nfsproto.LinkRes{Status: nfsproto.ErrNotDir}
	}
	if _, exists := dir.children[a.Name]; exists {
		return &nfsproto.LinkRes{Status: nfsproto.ErrExist, DirAttr: nfsproto.Some(dir.at)}
	}
	dir.children[a.Name] = a.FH.FileID
	n.at.Nlink++
	now := s.now()
	n.at.Ctime = now
	dir.at.Mtime = now
	dir.at.Ctime = now
	return &nfsproto.LinkRes{Status: nfsproto.OK,
		Attr: nfsproto.Some(n.at), DirAttr: nfsproto.Some(dir.at)}
}

func (s *Server) readdir(a *nfsproto.ReadDirArgs) *nfsproto.ReadDirRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.nodes[a.Dir.FileID]
	if dir == nil || dir.children == nil {
		return &nfsproto.ReadDirRes{Status: nfsproto.ErrNotDir}
	}
	names := make([]string, 0, len(dir.children))
	for name := range dir.children {
		names = append(names, name)
	}
	sort.Strings(names)
	start := int(a.Cookie)
	if start > len(names) {
		return &nfsproto.ReadDirRes{Status: nfsproto.ErrBadCookie}
	}
	res := &nfsproto.ReadDirRes{Status: nfsproto.OK, DirAttr: nfsproto.Some(dir.at)}
	bytes := uint32(0)
	for i := start; i < len(names); i++ {
		sz := uint32(24 + len(names[i]))
		if bytes+sz > a.Count && len(res.Entries) > 0 {
			return res
		}
		res.Entries = append(res.Entries, nfsproto.DirEntry{
			FileID: dir.children[names[i]], Name: names[i], Cookie: uint64(i + 1),
		})
		bytes += sz
	}
	res.EOF = true
	return res
}

func (s *Server) fsstat(a *nfsproto.FsStatArgs) *nfsproto.FsStatRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	res := &nfsproto.FsStatRes{
		Status: nfsproto.OK, TotalBytes: 1 << 40, FreeBytes: 1 << 40,
		TotalFiles: 1 << 24, FreeFiles: 1<<24 - uint64(len(s.nodes)),
	}
	if n := s.nodes[a.FH.FileID]; n != nil {
		res.Attr = nfsproto.Some(n.at)
	}
	return res
}
