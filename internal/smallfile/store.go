// Package smallfile implements the Slice small-file servers (§4.4).
//
// A small-file server absorbs read/write traffic below the threshold
// offset, keeping it away from both the storage array and the directory
// servers. Each file is a sequence of 8KB logical blocks; a per-file map
// record — held in a descriptor array indexed by fileID — maps each block
// to an (offset, length) extent within a backing storage object. Physical
// space for a block is rounded up to the next power of two, and freed
// fragments are reallocated best-fit, in the manner of FFS fragments and
// SquidMLA. New data is laid out sequentially at the end of the backing
// object, batching small writes into a single stream.
package smallfile

import (
	"fmt"
	"sync"

	"slice/internal/fhandle"
	"slice/internal/storage"
	"slice/internal/wal"
	"slice/internal/xdr"
)

// LogicalBlock is the logical block size of small files.
const LogicalBlock = 8192

// MaxBlocks bounds the logical blocks a map record can describe; with the
// default 64KB threshold a small-file server never sees offsets beyond
// MaxBlocks*LogicalBlock.
const MaxBlocks = 8

// MinFrag is the smallest physical fragment (the paper's example: a 108
// byte tail consumes a 128 byte fragment).
const MinFrag = 128

// extent locates one logical block's physical storage in the backing
// object. Length 0 means unallocated.
type extent struct {
	Off    int64
	Length int32 // physical fragment size (power of two)
	Used   int32 // bytes of the fragment holding live data
}

// mapRecord is the per-file map (Figure 2 of the paper).
type mapRecord struct {
	Extents [MaxBlocks]extent
	Size    int64 // local (below-threshold) file size
}

// Stats counts small-file store activity.
type Stats struct {
	Reads        uint64
	Writes       uint64
	Removes      uint64
	BytesRead    uint64
	BytesWritten uint64
	FragAllocs   uint64
	FragReuses   uint64 // allocations satisfied from the free list
	FragFrees    uint64
	Grows        uint64 // block rewrites into a larger fragment
	AppendBytes  int64  // bytes laid out at the end of the backing object
}

// roundFrag rounds n up to the next power-of-two fragment size, minimum
// MinFrag, maximum LogicalBlock.
func roundFrag(n int32) int32 {
	if n <= MinFrag {
		return MinFrag
	}
	f := int32(MinFrag)
	for f < n {
		f <<= 1
	}
	if f > LogicalBlock {
		f = LogicalBlock
	}
	return f
}

// fragClass maps a fragment size to its free-list class index.
func fragClass(size int32) int {
	c := 0
	for f := int32(MinFrag); f < size; f <<= 1 {
		c++
	}
	return c
}

// numClasses is the number of power-of-two size classes (128..8192).
const numClasses = 7

// Store is the small-file storage manager: map records plus a best-fit
// fragment allocator over a backing storage object.
type Store struct {
	mu      sync.Mutex
	backing *storage.ObjectStore
	backID  storage.ObjectID
	maps    map[uint64]*mapRecord // fileID -> map record
	free    [numClasses][]int64   // size class -> free fragment offsets
	end     int64                 // end of backing object (next append offset)
	log     *wal.Log
	stats   Stats
}

// NewStore creates a small-file store over the given backing object.
func NewStore(backing *storage.ObjectStore, backID storage.ObjectID, log *wal.Log) *Store {
	return &Store{
		backing: backing,
		backID:  backID,
		maps:    make(map[uint64]*mapRecord),
		log:     log,
	}
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// NumFiles returns the number of map records.
func (s *Store) NumFiles() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.maps)
}

// PhysicalBytes returns the bytes of backing storage allocated to live
// fragments (the paper's example: an 8300 byte file consumes 8320).
func (s *Store) PhysicalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, rec := range s.maps {
		for _, ext := range rec.Extents {
			t += int64(ext.Length)
		}
	}
	return t
}

// alloc obtains a fragment of exactly size bytes (a power of two),
// preferring the free list (best fit: smallest class that fits) and
// otherwise extending the backing object.
func (s *Store) alloc(size int32) int64 {
	s.stats.FragAllocs++
	for c := fragClass(size); c < numClasses; c++ {
		if n := len(s.free[c]); n > 0 {
			off := s.free[c][n-1]
			s.free[c] = s.free[c][:n-1]
			s.stats.FragReuses++
			// A larger-class fragment is used whole; the remainder is
			// internal fragmentation until freed (simple and safe).
			return off
		}
	}
	off := s.end
	s.end += int64(size)
	s.stats.AppendBytes += int64(size)
	return off
}

// freeFrag returns a fragment to its size-class free list.
func (s *Store) freeFrag(off int64, size int32) {
	if size <= 0 {
		return
	}
	s.stats.FragFrees++
	c := fragClass(size)
	if c >= numClasses {
		c = numClasses - 1
	}
	s.free[c] = append(s.free[c], off)
}

// Write stores data at the byte offset off of the file identified by fh.
// stable selects NFS FILE_SYNC semantics.
func (s *Store) Write(fh fhandle.Handle, off int64, data []byte, stable bool) error {
	if off < 0 {
		return fmt.Errorf("smallfile: negative offset %d", off)
	}
	if off+int64(len(data)) > MaxBlocks*LogicalBlock {
		return fmt.Errorf("smallfile: write beyond threshold region (end %d)", off+int64(len(data)))
	}
	fileID := fh.FileID
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Writes++
	s.stats.BytesWritten += uint64(len(data))
	rec := s.maps[fileID]
	if rec == nil {
		rec = &mapRecord{}
		s.maps[fileID] = rec
	}
	end := off + int64(len(data))
	for len(data) > 0 {
		bn := off / LogicalBlock
		bo := int32(off % LogicalBlock)
		n := int32(len(data))
		if n > LogicalBlock-bo {
			n = LogicalBlock - bo
		}
		ext := &rec.Extents[bn]
		needUsed := bo + n
		if ext.Used > needUsed {
			needUsed = ext.Used
		}
		needFrag := roundFrag(needUsed)
		if needFrag > ext.Length {
			// Grow: allocate a larger fragment, migrate live bytes.
			newOff := s.alloc(needFrag)
			if ext.Length > 0 {
				old := make([]byte, ext.Used)
				if _, _, err := s.backing.ReadAt(s.backID, ext.Off, old); err == nil {
					if err := s.backing.WriteAt(s.backID, newOff, old, stable); err != nil {
						return err
					}
				}
				s.freeFrag(ext.Off, ext.Length)
				s.stats.Grows++
			}
			ext.Off = newOff
			ext.Length = needFrag
		}
		if err := s.backing.WriteAt(s.backID, ext.Off+int64(bo), data[:n], stable); err != nil {
			return err
		}
		ext.Used = needUsed
		data = data[n:]
		off += int64(n)
	}
	if end > rec.Size {
		rec.Size = end
	}
	if s.log != nil {
		if _, err := s.log.Append(recMap, encodeMapRecord(fileID, rec)); err != nil {
			return err
		}
		if stable {
			if err := s.log.Sync(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Read fills p from the file at byte offset off, returning the count and
// whether the read reached the end of the server's local data.
func (s *Store) Read(fh fhandle.Handle, off int64, p []byte) (int, bool, error) {
	if off < 0 {
		return 0, false, fmt.Errorf("smallfile: negative offset %d", off)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Reads++
	rec := s.maps[fh.FileID]
	if rec == nil {
		return 0, true, nil
	}
	if off >= rec.Size {
		return 0, true, nil
	}
	n := len(p)
	if int64(n) > rec.Size-off {
		n = int(rec.Size - off)
	}
	read := 0
	for read < n {
		cur := off + int64(read)
		bn := cur / LogicalBlock
		bo := int32(cur % LogicalBlock)
		want := n - read
		if int32(want) > LogicalBlock-bo {
			want = int(LogicalBlock - bo)
		}
		ext := &rec.Extents[bn]
		if ext.Length == 0 || bo >= ext.Used {
			// Hole: zero fill.
			for i := read; i < read+want; i++ {
				p[i] = 0
			}
		} else {
			avail := int(ext.Used - bo)
			fill := want
			if fill > avail {
				fill = avail
			}
			if _, _, err := s.backing.ReadAt(s.backID, ext.Off+int64(bo), p[read:read+fill]); err != nil {
				return read, false, err
			}
			for i := read + fill; i < read+want; i++ {
				p[i] = 0
			}
		}
		read += want
	}
	s.stats.BytesRead += uint64(n)
	return n, off+int64(n) >= rec.Size, nil
}

// Size returns the store's local size for the file.
func (s *Store) Size(fh fhandle.Handle) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.maps[fh.FileID]
	if rec == nil {
		return 0, false
	}
	return rec.Size, true
}

// Used returns the physical bytes allocated to the file.
func (s *Store) Used(fh fhandle.Handle) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.maps[fh.FileID]
	if rec == nil {
		return 0
	}
	var t int64
	for _, ext := range rec.Extents {
		t += int64(ext.Length)
	}
	return t
}

// Remove frees the file's fragments and map record.
func (s *Store) Remove(fh fhandle.Handle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Removes++
	rec := s.maps[fh.FileID]
	if rec == nil {
		return
	}
	for _, ext := range rec.Extents {
		s.freeFrag(ext.Off, ext.Length)
	}
	delete(s.maps, fh.FileID)
	if s.log != nil {
		_, _ = s.log.AppendSync(recUnmap, encodeFileID(fh.FileID))
	}
}

// Truncate sets the local size, freeing fragments beyond the new end.
func (s *Store) Truncate(fh fhandle.Handle, size int64) error {
	if size < 0 {
		return fmt.Errorf("smallfile: negative size %d", size)
	}
	if size > MaxBlocks*LogicalBlock {
		size = MaxBlocks * LogicalBlock
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.maps[fh.FileID]
	if rec == nil {
		if size == 0 {
			return nil
		}
		rec = &mapRecord{}
		s.maps[fh.FileID] = rec
	}
	firstFree := (size + LogicalBlock - 1) / LogicalBlock
	for bn := firstFree; bn < MaxBlocks; bn++ {
		ext := &rec.Extents[bn]
		if ext.Length > 0 {
			s.freeFrag(ext.Off, ext.Length)
			*ext = extent{}
		}
	}
	if bo := int32(size % LogicalBlock); bo > 0 {
		ext := &rec.Extents[size/LogicalBlock]
		if ext.Used > bo {
			ext.Used = bo
		}
	}
	rec.Size = size
	if s.log != nil {
		if _, err := s.log.AppendSync(recMap, encodeMapRecord(fh.FileID, rec)); err != nil {
			return err
		}
	}
	return nil
}

// Commit makes the file's buffered data durable (NFS V3 commit compliance
// for writes below the threshold offset) and returns the write verifier.
func (s *Store) Commit(fh fhandle.Handle) uint64 {
	s.mu.Lock()
	log := s.log
	s.mu.Unlock()
	if log != nil {
		_ = log.Sync()
	}
	return s.backing.Commit(s.backID)
}

// ------------------------------------------------------------ journaling

// Log record types for small-file map journaling.
const (
	recMap   = 1 // full map record post-state
	recUnmap = 2 // file removed
)

func encodeMapRecord(fileID uint64, rec *mapRecord) []byte {
	e := xdr.NewEncoder(32 + MaxBlocks*16)
	e.PutUint64(fileID)
	e.PutInt64(rec.Size)
	for _, ext := range rec.Extents {
		e.PutInt64(ext.Off)
		e.PutInt32(ext.Length)
		e.PutInt32(ext.Used)
	}
	return e.Bytes()
}

func decodeMapRecord(p []byte) (uint64, *mapRecord, error) {
	d := xdr.NewDecoder(p)
	fileID, err := d.Uint64()
	if err != nil {
		return 0, nil, err
	}
	rec := &mapRecord{}
	if rec.Size, err = d.Int64(); err != nil {
		return 0, nil, err
	}
	for i := range rec.Extents {
		if rec.Extents[i].Off, err = d.Int64(); err != nil {
			return 0, nil, err
		}
		if rec.Extents[i].Length, err = d.Int32(); err != nil {
			return 0, nil, err
		}
		if rec.Extents[i].Used, err = d.Int32(); err != nil {
			return 0, nil, err
		}
	}
	return fileID, rec, nil
}

func encodeFileID(fileID uint64) []byte {
	e := xdr.NewEncoder(8)
	e.PutUint64(fileID)
	return e.Bytes()
}

// Recover rebuilds the map records from the journal; the data itself is in
// the backing object. This is the small-file half of manager failover.
func (s *Store) Recover(log *wal.Log) error {
	maps := make(map[uint64]*mapRecord)
	var end int64
	err := log.Scan(func(seq uint64, recType uint32, payload []byte) error {
		switch recType {
		case recMap:
			fileID, rec, err := decodeMapRecord(payload)
			if err != nil {
				return err
			}
			maps[fileID] = rec
			for _, ext := range rec.Extents {
				if e := ext.Off + int64(ext.Length); e > end {
					end = e
				}
			}
		case recUnmap:
			d := xdr.NewDecoder(payload)
			fileID, err := d.Uint64()
			if err != nil {
				return err
			}
			delete(maps, fileID)
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.maps = maps
	s.end = end
	s.log = log
	// Free lists are conservatively dropped on recovery: fragments that
	// were free simply stay unused until the region is reallocated by
	// growth at the end; a background compactor would reclaim them.
	for i := range s.free {
		s.free[i] = nil
	}
	s.mu.Unlock()
	return nil
}
