package dirsrv

import (
	"sort"

	"slice/internal/attr"
	"slice/internal/fhandle"
	"slice/internal/nfsproto"
	"slice/internal/route"
	"slice/internal/xdr"
)

// xdrEncoder shortens peer-call argument closures.
type xdrEncoder = xdr.Encoder

// This file implements the NFS-facing operations of a directory server.
// The general shape of each multi-site operation is: perform the local
// mutation under s.mu (via a local* helper), release the lock, then issue
// any peer call. Peer handlers are leaves — they never call out — so the
// peer protocol cannot deadlock across sites.

// optLocalAttr returns the attribute cell for fh if resident.
func (s *Server) optLocalAttr(fh fhandle.Handle) nfsproto.OptAttr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.st.attrs[fh.FileID]; c != nil {
		return nfsproto.Some(c.at)
	}
	return nfsproto.OptAttr{}
}

// childAttr resolves the attributes of child, following a cross-site
// reference if the cell lives elsewhere (lookup crossing a site boundary,
// §4.3).
func (s *Server) childAttr(child fhandle.Handle) nfsproto.OptAttr {
	s.mu.Lock()
	c := s.st.attrs[child.FileID]
	s.mu.Unlock()
	if c != nil {
		return nfsproto.Some(c.at)
	}
	site := child.Site % uint32(s.dirSites())
	if site == s.site {
		return nfsproto.OptAttr{} // should be here but is not: stale
	}
	s.addCounter(func(ct *Counters) { ct.CrossSite++ })
	st, at := s.peerGetAttrByKey(site, child.FileID)
	if st != nfsproto.OK {
		return nfsproto.OptAttr{}
	}
	return nfsproto.Some(at)
}

func (s *Server) getattr(a *nfsproto.GetAttrArgs) *nfsproto.GetAttrRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.st.attrs[a.FH.FileID]
	if c == nil || c.fh.Gen != a.FH.Gen {
		return &nfsproto.GetAttrRes{Status: nfsproto.ErrStale}
	}
	return &nfsproto.GetAttrRes{Status: nfsproto.OK, Attr: c.at}
}

func (s *Server) setattr(a *nfsproto.SetAttrArgs) *nfsproto.SetAttrRes {
	st, at := s.localSetAttrByKey(a.FH.FileID, &a.Sattr)
	res := &nfsproto.SetAttrRes{Status: st}
	if st == nfsproto.OK {
		res.Attr = nfsproto.Some(at)
	}
	return res
}

func (s *Server) access(a *nfsproto.AccessArgs) *nfsproto.AccessRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.st.attrs[a.FH.FileID]
	if c == nil {
		return &nfsproto.AccessRes{Status: nfsproto.ErrStale}
	}
	// The prototype grants all requested permissions; Slice defers real
	// access control to the handle-capability model of §2.2.
	return &nfsproto.AccessRes{
		Status: nfsproto.OK,
		Attr:   nfsproto.Some(c.at),
		Access: a.Access,
	}
}

func (s *Server) lookup(a *nfsproto.LookupArgs) *nfsproto.LookupRes {
	s.mu.Lock()
	entry := s.st.findEntry(a.Dir, a.Name)
	s.mu.Unlock()
	if entry == nil {
		return &nfsproto.LookupRes{
			Status:  nfsproto.ErrNoEnt,
			DirAttr: s.optLocalAttr(a.Dir),
		}
	}
	child := entry.child
	return &nfsproto.LookupRes{
		Status:  nfsproto.OK,
		FH:      child,
		Attr:    s.childAttr(child),
		DirAttr: s.optLocalAttr(a.Dir),
	}
}

// touchParentMaybeRemote updates the parent directory's mtime/nlink, via a
// peer call when the parent's cell lives on another site (name hashing).
func (s *Server) touchParentMaybeRemote(parent fhandle.Handle, nlinkDelta int32) nfsproto.Status {
	site := parent.Site % uint32(s.dirSites())
	if site == s.site {
		return s.localTouchDir(parent.FileID, nlinkDelta)
	}
	s.addCounter(func(ct *Counters) { ct.CrossSite++ })
	st, err := s.peerCall(site, peerTouchDir, func(e *xdrEncoder) {
		e.PutUint64(parent.FileID)
		e.PutInt32(nlinkDelta)
	}, nil)
	if err != nil {
		return nfsproto.ErrServerFault
	}
	return st
}

func (s *Server) create(a *nfsproto.CreateArgs) *nfsproto.CreateRes {
	if s.kind == route.MkdirSwitching && !s.ownsHandle(a.Dir) {
		return &nfsproto.CreateRes{Status: nfsproto.ErrMisrouted}
	}
	// Mint the child and its attribute cell here (fixed placement: the
	// create site owns the file's attributes).
	s.mu.Lock()
	if existing := s.st.findEntry(a.Dir, a.Name); existing != nil {
		child := existing.child
		s.mu.Unlock()
		if a.Exclusive {
			return &nfsproto.CreateRes{Status: nfsproto.ErrExist, DirAttr: s.optLocalAttr(a.Dir)}
		}
		return &nfsproto.CreateRes{
			Status: nfsproto.OK, FH: child,
			Attr: s.childAttr(child), DirAttr: s.optLocalAttr(a.Dir),
		}
	}
	now := s.now()
	fh := s.mintLocked(uint8(attr.TypeReg))
	mode := uint32(0o644)
	if a.Sattr.SetMode {
		mode = a.Sattr.Mode
	}
	cell := &attrCell{fh: fh, at: attr.Attr{
		Type: attr.TypeReg, Mode: mode, Nlink: 1, FileID: fh.FileID,
		UID: a.Sattr.UID, GID: a.Sattr.GID,
		Atime: now, Mtime: now, Ctime: now,
	}}
	s.st.attrs[fh.FileID] = cell
	s.st.insertEntry(&nameCell{parent: a.Dir.Ident(), name: a.Name, child: fh})
	if _, err := s.log.Append(recCreate, encodeCellRecord(fh, &cell.at)); err != nil {
		s.mu.Unlock()
		return &nfsproto.CreateRes{Status: nfsproto.ErrIO}
	}
	if _, err := s.log.AppendSync(recInsert, encodeEntryRecord(a.Dir, a.Name, fh)); err != nil {
		s.mu.Unlock()
		return &nfsproto.CreateRes{Status: nfsproto.ErrIO}
	}
	at := cell.at
	s.mu.Unlock()

	if st := s.touchParentMaybeRemote(a.Dir, 0); st == nfsproto.ErrStale {
		// Parent vanished concurrently: undo.
		s.localRemoveEntry(a.Dir, a.Name, false)
		s.mu.Lock()
		delete(s.st.attrs, fh.FileID)
		s.mu.Unlock()
		return &nfsproto.CreateRes{Status: nfsproto.ErrStale}
	}
	return &nfsproto.CreateRes{
		Status: nfsproto.OK, FH: fh,
		Attr: nfsproto.Some(at), DirAttr: s.optLocalAttr(a.Dir),
	}
}

func (s *Server) mkdir(a *nfsproto.CreateArgs) *nfsproto.CreateRes {
	// Under mkdir switching, arriving at a site other than the parent's
	// means the µproxy redirected this mkdir here: the new directory (and
	// its descendants) will live on this site, orphaned from its parent
	// (§3.2). The name entry is installed at the parent's site by a peer
	// call, making this the paper's two-site operation.
	redirected := s.kind == route.MkdirSwitching && !s.ownsHandle(a.Dir)

	s.mu.Lock()
	if !redirected {
		if existing := s.st.findEntry(a.Dir, a.Name); existing != nil {
			s.mu.Unlock()
			return &nfsproto.CreateRes{Status: nfsproto.ErrExist, DirAttr: s.optLocalAttr(a.Dir)}
		}
	}
	now := s.now()
	fh := s.mintLocked(uint8(attr.TypeDir))
	mode := uint32(0o755)
	if a.Sattr.SetMode {
		mode = a.Sattr.Mode
	}
	cell := &attrCell{fh: fh, at: attr.Attr{
		Type: attr.TypeDir, Mode: mode, Nlink: 2, FileID: fh.FileID,
		UID: a.Sattr.UID, GID: a.Sattr.GID,
		Atime: now, Mtime: now, Ctime: now,
	}}
	s.st.attrs[fh.FileID] = cell
	recType := uint32(recNewCell)
	if redirected {
		recType = recMkdirIn
	}
	if _, err := s.log.AppendSync(recType, encodeCellRecord(fh, &cell.at)); err != nil {
		s.mu.Unlock()
		return &nfsproto.CreateRes{Status: nfsproto.ErrIO}
	}
	at := cell.at
	s.mu.Unlock()

	var st nfsproto.Status
	if redirected {
		s.addCounter(func(ct *Counters) { ct.CrossSite++ })
		parentSite := a.Dir.Site % uint32(s.dirSites())
		st, _ = s.peerInsert(parentSite, a.Dir, a.Name, fh)
	} else {
		st = s.localInsertEntry(a.Dir, a.Name, fh, true)
		if st == nfsproto.OK && !s.ownsHandle(a.Dir) {
			// Name hashing: the entry hashed here, but the parent's
			// attribute cell lives at its own site; its link count and
			// mtime must be updated there.
			if pst := s.touchParentMaybeRemote(a.Dir, 1); pst == nfsproto.ErrStale {
				st = nfsproto.ErrStale
				s.localRemoveEntry(a.Dir, a.Name, false)
			}
		}
	}
	if st != nfsproto.OK {
		// Abort: discard the orphan cell.
		s.mu.Lock()
		delete(s.st.attrs, fh.FileID)
		_, _ = s.log.AppendSync(recCellGone, encodeCellRecord(fh, &at))
		s.mu.Unlock()
		return &nfsproto.CreateRes{Status: st, DirAttr: s.optLocalAttr(a.Dir)}
	}
	return &nfsproto.CreateRes{
		Status: nfsproto.OK, FH: fh,
		Attr: nfsproto.Some(at), DirAttr: s.optLocalAttr(a.Dir),
	}
}

// peerInsert installs a name entry at a remote site.
func (s *Server) peerInsert(site uint32, parent fhandle.Handle, name string, child fhandle.Handle) (nfsproto.Status, error) {
	return s.peerCall(site, peerInsertEntry, func(e *xdrEncoder) {
		parent.Encode(e)
		e.PutString(name)
		child.Encode(e)
	}, nil)
}

func (s *Server) remove(a *nfsproto.RemoveArgs) *nfsproto.RemoveRes {
	s.mu.Lock()
	entry := s.st.findEntry(a.Dir, a.Name)
	if entry == nil {
		s.mu.Unlock()
		return &nfsproto.RemoveRes{Status: nfsproto.ErrNoEnt, DirAttr: s.optLocalAttr(a.Dir)}
	}
	if entry.child.Type == uint8(attr.TypeDir) {
		s.mu.Unlock()
		return &nfsproto.RemoveRes{Status: nfsproto.ErrIsDir, DirAttr: s.optLocalAttr(a.Dir)}
	}
	child := entry.child
	s.mu.Unlock()

	st, _ := s.localRemoveEntry(a.Dir, a.Name, true)
	if st != nfsproto.OK {
		return &nfsproto.RemoveRes{Status: st, DirAttr: s.optLocalAttr(a.Dir)}
	}
	// Drop the child's link count, following the cross-site reference if
	// its attribute cell lives elsewhere (hard links under name hashing).
	childSite := child.Site % uint32(s.dirSites())
	if childSite == s.site {
		s.localLinkDelta(child.FileID, -1)
	} else {
		s.addCounter(func(ct *Counters) { ct.CrossSite++ })
		_, _ = s.peerCall(childSite, peerLinkDelta, func(e *xdrEncoder) {
			e.PutUint64(child.FileID)
			e.PutInt32(-1)
		}, nil)
	}
	if !s.ownsHandle(a.Dir) {
		s.touchParentMaybeRemote(a.Dir, 0)
	}
	return &nfsproto.RemoveRes{Status: nfsproto.OK, DirAttr: s.optLocalAttr(a.Dir)}
}

// dirEmpty checks whether a directory has no entries anywhere. Under mkdir
// switching all entries of a directory live at its own site; under name
// hashing they may be scattered, so every site is consulted (§3.2 notes
// this multi-site cost structure).
func (s *Server) dirEmpty(child fhandle.Handle) (bool, nfsproto.Status) {
	if s.kind == route.MkdirSwitching {
		s.mu.Lock()
		n := len(s.st.byDir[child.Ident()])
		s.mu.Unlock()
		return n == 0, nfsproto.OK
	}
	for site := 0; site < s.dirSites(); site++ {
		var n int
		if uint32(site) == s.site {
			n = len(s.localListDir(child.Ident()))
		} else {
			var err error
			n, err = s.peerCountEntries(uint32(site), child)
			if err != nil {
				return false, nfsproto.ErrServerFault
			}
		}
		if n > 0 {
			return false, nfsproto.OK
		}
	}
	return true, nfsproto.OK
}

func (s *Server) rmdir(a *nfsproto.RemoveArgs) *nfsproto.RemoveRes {
	s.mu.Lock()
	entry := s.st.findEntry(a.Dir, a.Name)
	if entry == nil {
		s.mu.Unlock()
		return &nfsproto.RemoveRes{Status: nfsproto.ErrNoEnt, DirAttr: s.optLocalAttr(a.Dir)}
	}
	if entry.child.Type != uint8(attr.TypeDir) {
		s.mu.Unlock()
		return &nfsproto.RemoveRes{Status: nfsproto.ErrNotDir, DirAttr: s.optLocalAttr(a.Dir)}
	}
	child := entry.child
	s.mu.Unlock()

	childSite := child.Site % uint32(s.dirSites())
	if childSite == s.site {
		empty, st := s.dirEmpty(child)
		if st != nfsproto.OK {
			return &nfsproto.RemoveRes{Status: st}
		}
		if !empty {
			return &nfsproto.RemoveRes{Status: nfsproto.ErrNotEmpty, DirAttr: s.optLocalAttr(a.Dir)}
		}
		if st := s.localRemoveDirCell(child, true); st != nfsproto.OK && st != nfsproto.ErrStale {
			return &nfsproto.RemoveRes{Status: st, DirAttr: s.optLocalAttr(a.Dir)}
		}
	} else {
		// Orphan directory (mkdir switching): its cell and entries live
		// at the child's site; ask that site to verify emptiness and
		// remove the cell.
		s.addCounter(func(ct *Counters) { ct.CrossSite++ })
		st, err := s.peerCall(childSite, peerRemoveDirCell, func(e *xdrEncoder) {
			child.Encode(e)
		}, nil)
		if err != nil {
			return &nfsproto.RemoveRes{Status: nfsproto.ErrServerFault}
		}
		if st != nfsproto.OK && st != nfsproto.ErrStale {
			return &nfsproto.RemoveRes{Status: st, DirAttr: s.optLocalAttr(a.Dir)}
		}
	}
	st, _ := s.localRemoveEntry(a.Dir, a.Name, true)
	if st != nfsproto.OK {
		return &nfsproto.RemoveRes{Status: st, DirAttr: s.optLocalAttr(a.Dir)}
	}
	if !s.ownsHandle(a.Dir) {
		s.touchParentMaybeRemote(a.Dir, -1)
	}
	return &nfsproto.RemoveRes{Status: nfsproto.OK, DirAttr: s.optLocalAttr(a.Dir)}
}

func (s *Server) rename(a *nfsproto.RenameArgs) *nfsproto.RenameRes {
	s.mu.Lock()
	entry := s.st.findEntry(a.FromDir, a.FromName)
	s.mu.Unlock()
	if entry == nil {
		return &nfsproto.RenameRes{
			Status:      nfsproto.ErrNoEnt,
			FromDirAttr: s.optLocalAttr(a.FromDir),
			ToDirAttr:   s.optLocalAttr(a.ToDir),
		}
	}
	child := entry.child
	isDir := child.Type == uint8(attr.TypeDir)
	sameDir := a.FromDir.Ident() == a.ToDir.Ident()

	// Rename is link-then-remove (§4.3). Insert the new entry first.
	var targetSite uint32
	if s.kind == route.NameHashing {
		targetSite = s.table.Site(fhandle.NameKey(handleFromKey(a.ToDir.Ident()), a.ToName))
	} else {
		targetSite = a.ToDir.Site % uint32(s.dirSites())
	}
	var nlinkBump int32
	if isDir && !sameDir {
		nlinkBump = 1
	}
	var st nfsproto.Status
	if targetSite == s.site {
		st = s.localInsertEntry(a.ToDir, a.ToName, child, true)
	} else {
		s.addCounter(func(ct *Counters) { ct.CrossSite++ })
		st, _ = s.peerInsert(targetSite, a.ToDir, a.ToName, child)
	}
	// The insert updates the destination directory's cell only when that
	// cell is resident at the entry's site; under name hashing the cell
	// lives at the directory's own site and needs an explicit touch.
	if st == nfsproto.OK && a.ToDir.Site%uint32(s.dirSites()) != targetSite {
		s.touchParentMaybeRemote(a.ToDir, nlinkBump)
	}
	if st != nfsproto.OK {
		return &nfsproto.RenameRes{
			Status:      st,
			FromDirAttr: s.optLocalAttr(a.FromDir),
			ToDirAttr:   s.optLocalAttr(a.ToDir),
		}
	}
	// Remove the old entry. localRemoveEntry adjusts the from-parent's
	// nlink when a directory moves out.
	st, _ = s.localRemoveEntry(a.FromDir, a.FromName, true)
	if st != nfsproto.OK {
		return &nfsproto.RenameRes{Status: st}
	}
	if !s.ownsHandle(a.FromDir) {
		var delta int32
		if isDir && !sameDir {
			delta = -1
		}
		s.touchParentMaybeRemote(a.FromDir, delta)
	}
	return &nfsproto.RenameRes{
		Status:      nfsproto.OK,
		FromDirAttr: s.optLocalAttr(a.FromDir),
		ToDirAttr:   s.optLocalAttr(a.ToDir),
	}
}

func (s *Server) link(a *nfsproto.LinkArgs) *nfsproto.LinkRes {
	if a.FH.Type == uint8(attr.TypeDir) {
		return &nfsproto.LinkRes{Status: nfsproto.ErrIsDir}
	}
	st := s.localInsertEntry(a.Dir, a.Name, a.FH, true)
	if st != nfsproto.OK {
		return &nfsproto.LinkRes{Status: st, DirAttr: s.optLocalAttr(a.Dir)}
	}
	childSite := a.FH.Site % uint32(s.dirSites())
	if childSite == s.site {
		s.localLinkDelta(a.FH.FileID, 1)
	} else {
		s.addCounter(func(ct *Counters) { ct.CrossSite++ })
		_, _ = s.peerCall(childSite, peerLinkDelta, func(e *xdrEncoder) {
			e.PutUint64(a.FH.FileID)
			e.PutInt32(1)
		}, nil)
	}
	if !s.ownsHandle(a.Dir) {
		s.touchParentMaybeRemote(a.Dir, 0)
	}
	return &nfsproto.LinkRes{
		Status:  nfsproto.OK,
		Attr:    s.childAttr(a.FH),
		DirAttr: s.optLocalAttr(a.Dir),
	}
}

func (s *Server) readdir(a *nfsproto.ReadDirArgs) *nfsproto.ReadDirRes {
	var all []remoteEntry
	if s.kind == route.MkdirSwitching {
		all = s.localListDir(a.Dir.Ident())
	} else {
		// Name hashing: a directory's entries span all sites; this is
		// the right behaviour for large directories but raises readdir
		// cost for small ones (§3.2).
		all = append(all, s.localListDir(a.Dir.Ident())...)
		for site := 0; site < s.dirSites(); site++ {
			if uint32(site) == s.site {
				continue
			}
			ents, err := s.peerFetchEntries(uint32(site), a.Dir)
			if err != nil {
				return &nfsproto.ReadDirRes{Status: nfsproto.ErrServerFault}
			}
			all = append(all, ents...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	}
	start := int(a.Cookie)
	if start > len(all) {
		return &nfsproto.ReadDirRes{Status: nfsproto.ErrBadCookie}
	}
	res := &nfsproto.ReadDirRes{Status: nfsproto.OK, DirAttr: s.optLocalAttr(a.Dir)}
	bytes := uint32(0)
	for i := start; i < len(all); i++ {
		ent := all[i]
		sz := uint32(16 + len(ent.name) + 8)
		if bytes+sz > a.Count && len(res.Entries) > 0 {
			return res // EOF false: more to come
		}
		res.Entries = append(res.Entries, nfsproto.DirEntry{
			FileID: ent.child.FileID,
			Name:   ent.name,
			Cookie: uint64(i + 1),
		})
		bytes += sz
		if len(res.Entries) >= nfsproto.MaxDirEntries {
			return res
		}
	}
	res.EOF = true
	return res
}

func (s *Server) fsstat(a *nfsproto.FsStatArgs) *nfsproto.FsStatRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	nFiles := uint64(len(s.st.attrs))
	res := &nfsproto.FsStatRes{
		Status:     nfsproto.OK,
		TotalBytes: 1 << 40,
		FreeBytes:  1 << 40,
		TotalFiles: 1 << 24,
		FreeFiles:  1<<24 - nFiles,
	}
	if c := s.st.attrs[a.FH.FileID]; c != nil {
		res.Attr = nfsproto.Some(c.at)
	}
	return res
}

// symlink creates a symbolic link cell: a name entry plus an attribute
// cell carrying the target path. It follows the same placement rules as
// create — the link lives at the site that owns the (parent, name) entry.
func (s *Server) symlink(a *nfsproto.SymlinkArgs) *nfsproto.CreateRes {
	if s.kind == route.MkdirSwitching && !s.ownsHandle(a.Dir) {
		return &nfsproto.CreateRes{Status: nfsproto.ErrMisrouted}
	}
	if len(a.Target) > 4096 {
		return &nfsproto.CreateRes{Status: nfsproto.ErrNameTooLong}
	}
	s.mu.Lock()
	if s.st.findEntry(a.Dir, a.Name) != nil {
		s.mu.Unlock()
		return &nfsproto.CreateRes{Status: nfsproto.ErrExist, DirAttr: s.optLocalAttr(a.Dir)}
	}
	now := s.now()
	fh := s.mintLocked(uint8(attr.TypeLink))
	cell := &attrCell{fh: fh, at: attr.Attr{
		Type: attr.TypeLink, Mode: 0o777, Nlink: 1, FileID: fh.FileID,
		Size: uint64(len(a.Target)), Used: uint64(len(a.Target)),
		UID: a.Sattr.UID, GID: a.Sattr.GID,
		Atime: now, Mtime: now, Ctime: now,
	}, target: a.Target}
	s.st.attrs[fh.FileID] = cell
	s.st.insertEntry(&nameCell{parent: a.Dir.Ident(), name: a.Name, child: fh})
	if _, err := s.log.Append(recCreate, encodeCellRecordT(fh, &cell.at, a.Target)); err != nil {
		s.mu.Unlock()
		return &nfsproto.CreateRes{Status: nfsproto.ErrIO}
	}
	if _, err := s.log.AppendSync(recInsert, encodeEntryRecord(a.Dir, a.Name, fh)); err != nil {
		s.mu.Unlock()
		return &nfsproto.CreateRes{Status: nfsproto.ErrIO}
	}
	at := cell.at
	s.mu.Unlock()

	if st := s.touchParentMaybeRemote(a.Dir, 0); st == nfsproto.ErrStale {
		s.localRemoveEntry(a.Dir, a.Name, false)
		s.mu.Lock()
		delete(s.st.attrs, fh.FileID)
		s.mu.Unlock()
		return &nfsproto.CreateRes{Status: nfsproto.ErrStale}
	}
	return &nfsproto.CreateRes{
		Status: nfsproto.OK, FH: fh,
		Attr: nfsproto.Some(at), DirAttr: s.optLocalAttr(a.Dir),
	}
}

// readlink returns a symbolic link's target path.
func (s *Server) readlink(a *nfsproto.ReadLinkArgs) *nfsproto.ReadLinkRes {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.st.attrs[a.FH.FileID]
	if c == nil || c.fh.Gen != a.FH.Gen {
		return &nfsproto.ReadLinkRes{Status: nfsproto.ErrStale}
	}
	if c.at.Type != attr.TypeLink {
		return &nfsproto.ReadLinkRes{Status: nfsproto.ErrInval, Attr: nfsproto.Some(c.at)}
	}
	c.at.Atime = s.now()
	return &nfsproto.ReadLinkRes{
		Status: nfsproto.OK,
		Attr:   nfsproto.Some(c.at),
		Target: c.target,
	}
}
