package wire_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"slice/internal/chaos"
	"slice/internal/client"
	"slice/internal/dirsrv"
	"slice/internal/ensemble"
	"slice/internal/nfsproto"
	"slice/internal/oncrpc"
	"slice/internal/wire"
	"slice/internal/xdr"
)

// TestWireConformance is the loopback conformance run of the acceptance
// criteria: a client that only speaks record-marked ONC-RPC over real
// TCP sockets discovers the service through the portmapper, MNTs the
// export, and runs NFSv3 READ/WRITE and an untar through the interposed
// µproxy — ending fsck-clean with byte-identical data, with individual
// records bigger than the old 96 KiB datagram cap.
func TestWireConformance(t *testing.T) {
	const stripe = 128 * 1024
	e, err := ensemble.New(ensemble.Config{
		StorageNodes:     4,
		DirServers:       2,
		SmallFileServers: 1,
		Coordinator:      true,
		StripeUnit:       stripe,
		TCPListen:        "127.0.0.1:0",
		PortmapListen:    "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	gwAddr := e.Gateways[0].Addr().String()

	// Discovery: both programs answer GETPORT with gateway 0's port and
	// DUMP lists them.
	pmAddr := e.Portmap.Addr().String()
	for _, q := range []struct {
		name       string
		prog, vers uint32
	}{
		{"nfs", nfsproto.Program, nfsproto.Version},
		{"mount", nfsproto.MountProgram, nfsproto.MountVersion},
	} {
		port, err := wire.GetPort(pmAddr, q.prog, q.vers, nfsproto.IPProtoTCP)
		if err != nil {
			t.Fatalf("GETPORT %s: %v", q.name, err)
		}
		if port != e.Gateways[0].Port() {
			t.Fatalf("GETPORT %s = %d, want gateway port %d", q.name, port, e.Gateways[0].Port())
		}
	}
	maps, err := wire.Dump(pmAddr)
	if err != nil || len(maps) != 2 {
		t.Fatalf("DUMP: %d mappings, %v (want 2)", len(maps), err)
	}

	// MOUNT protocol proper: EXPORT lists the volume, MNT with the
	// advertised dirpath yields the root handle, a bogus path is
	// refused. All over one record-marked TCP connection.
	mconn, err := wire.Dial(gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	mnt := oncrpc.NewClient(mconn, e.Virtual, oncrpc.ClientConfig{})
	defer mnt.Close()

	body, err := mnt.Call(nfsproto.MountProgram, nfsproto.MountVersion,
		nfsproto.MountProcExport, nil)
	if err != nil {
		t.Fatalf("EXPORT: %v", err)
	}
	var exp nfsproto.ExportRes
	if err := exp.Decode(xdr.NewDecoder(body)); err != nil {
		t.Fatalf("EXPORT decode: %v", err)
	}
	if len(exp.Entries) != 1 || exp.Entries[0].Dir != dirsrv.ExportPath {
		t.Fatalf("EXPORT = %+v, want [%s]", exp.Entries, dirsrv.ExportPath)
	}

	body, err = mnt.Call(nfsproto.MountProgram, nfsproto.MountVersion,
		nfsproto.MountProcMnt, (&nfsproto.MountPathArgs{Path: dirsrv.ExportPath}).Encode)
	if err != nil {
		t.Fatalf("MNT: %v", err)
	}
	var mres nfsproto.MountMntRes
	if err := mres.Decode(xdr.NewDecoder(body)); err != nil {
		t.Fatalf("MNT decode: %v", err)
	}
	if mres.Status != nfsproto.OK {
		t.Fatalf("MNT status = %v", mres.Status)
	}
	if mres.FH != e.Root {
		t.Fatalf("MNT handle %v != export root %v", mres.FH, e.Root)
	}
	body, err = mnt.Call(nfsproto.MountProgram, nfsproto.MountVersion,
		nfsproto.MountProcMnt, (&nfsproto.MountPathArgs{Path: "/no/such/export"}).Encode)
	if err != nil {
		t.Fatalf("MNT bogus path: %v", err)
	}
	var bogus nfsproto.MountMntRes
	if err := bogus.Decode(xdr.NewDecoder(body)); err != nil {
		t.Fatalf("MNT bogus decode: %v", err)
	}
	if bogus.Status == nfsproto.OK {
		t.Fatal("MNT accepted a path outside the export list")
	}
	if _, err := mnt.Call(nfsproto.MountProgram, nfsproto.MountVersion,
		nfsproto.MountProcUmnt, (&nfsproto.MountPathArgs{Path: dirsrv.ExportPath}).Encode); err != nil {
		t.Fatalf("UMNT: %v", err)
	}

	// NFSv3 session over the same transport: untar a tree, then write a
	// file whose 128 KiB stripe chunks force records past the old cap.
	conn, err := wire.Dial(gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	c := client.NewWithConn(conn, client.Config{Server: e.Virtual, StripeUnit: stripe})
	defer c.Close()
	if err := c.Mount(); err != nil {
		t.Fatalf("mount over TCP: %v", err)
	}

	ents, err := chaos.Untar(c, c.Root(), chaos.UntarConfig{Dirs: 4, Files: 12})
	if err != nil {
		t.Fatalf("untar over TCP: %v", err)
	}
	if len(ents) != 16 {
		t.Fatalf("untar acked %d entries, want 16", len(ents))
	}

	fh, _, err := c.Create(c.Root(), "wire-bulk", 0o644, true)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	payload := make([]byte, 512*1024)
	for i := range payload {
		payload[i] = byte(i>>8 + i)
	}
	if err := c.WriteFile(fh, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := c.ReadAll(fh)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read back %d bytes, err %v", len(got), err)
	}
	chaos.VerifyBytes(t, e, c, fh, payload)
	chaos.FsckClean(t, e)

	// The headline property: single records through the gateway were
	// bigger than the 96 KiB that used to bound every datagram.
	st := e.Gateways[0].Stats()
	const oldCap = 96 * 1024
	if st.MaxRxRecord <= oldCap {
		t.Fatalf("MaxRxRecord = %d, want > %d", st.MaxRxRecord, oldCap)
	}
	if st.MaxTxRecord <= oldCap {
		t.Fatalf("MaxTxRecord = %d, want > %d", st.MaxTxRecord, oldCap)
	}
	if st.RxRecords == 0 || st.TxRecords == 0 || st.TotalConns == 0 {
		t.Fatalf("gateway stats incomplete: %+v", st)
	}
}

// TestWireFleetGateways exercises the per-member gateways of a scaled
// fleet: each member listens on its own derived port and serves its own
// virtual address.
func TestWireFleetGateways(t *testing.T) {
	e, err := ensemble.New(ensemble.Config{
		StorageNodes: 2,
		DirServers:   1,
		Proxies:      3,
		TCPListen:    "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if len(e.Gateways) != 3 {
		t.Fatalf("%d gateways, want 3", len(e.Gateways))
	}
	seen := map[uint32]bool{}
	for i, gw := range e.Gateways {
		if p := gw.Port(); p == 0 || seen[p] {
			t.Fatalf("gateway %d port %d duplicated or zero", i, p)
		} else {
			seen[p] = true
		}
	}
	// A session against every member's gateway sees the same volume.
	var fh0 string
	for i, gw := range e.Gateways {
		conn, err := wire.Dial(gw.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c := client.NewWithConn(conn, client.Config{Server: e.VirtualOf(i)})
		if err := c.Mount(); err != nil {
			t.Fatalf("mount via member %d: %v", i, err)
		}
		name := fmt.Sprintf("via-%d", i)
		if _, _, err := c.Create(c.Root(), name, 0o644, true); err != nil {
			t.Fatalf("create via member %d: %v", i, err)
		}
		if fh0 == "" {
			fh0 = name
		}
		c.Close()
	}
	// All files are visible through member 0 again.
	conn, err := wire.Dial(e.Gateways[0].Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := client.NewWithConn(conn, client.Config{Server: e.Virtual})
	defer c.Close()
	if err := c.Mount(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ents, err := c.ReadDir(c.Root())
		if err == nil && len(ents) == len(e.Gateways) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readdir: %d entries, %v (want %d)", len(ents), err, len(e.Gateways))
		}
		time.Sleep(10 * time.Millisecond)
	}
}
