package dirsrv

import (
	"slice/internal/attr"
	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/oncrpc"
	"slice/internal/xdr"
)

// PeerProgram is the RPC program number of the directory server peer-peer
// protocol (§4.3): link-count updates for cross-site create/link/remove and
// mkdir/rmdir, and cross-site traversal for lookup, getattr/setattr and
// readdir.
const (
	PeerProgram = 200201
	PeerVersion = 1
)

// Peer procedures.
const (
	peerGetAttr       = 1
	peerSetAttr       = 2
	peerInsertEntry   = 3
	peerRemoveEntry   = 4
	peerTouchDir      = 5
	peerRemoveDirCell = 6
	peerListDir       = 7
	peerCountDir      = 8
	peerLinkDelta     = 9
)

// peerClient returns (creating if needed) an RPC client to the directory
// server at addr.
func (s *Server) peerClient(a netsim.Addr) (*oncrpc.Client, error) {
	s.peersMu.Lock()
	defer s.peersMu.Unlock()
	if c, ok := s.peers[a]; ok {
		return c, nil
	}
	port, err := s.net.BindAny(s.host)
	if err != nil {
		return nil, err
	}
	c := oncrpc.NewClient(port, a, oncrpc.ClientConfig{})
	s.peers[a] = c
	return c, nil
}

// peerCall issues a peer procedure to the given logical site and decodes
// the leading status word of the reply; decodeRest (optional) consumes the
// remainder. The server must NOT hold s.mu across this call.
func (s *Server) peerCall(site uint32, proc uint32, args func(*xdr.Encoder),
	decodeRest func(*xdr.Decoder) error) (nfsproto.Status, error) {

	a, err := s.table.Lookup(site)
	if err != nil {
		return nfsproto.ErrServerFault, err
	}
	c, err := s.peerClient(a)
	if err != nil {
		return nfsproto.ErrServerFault, err
	}
	s.addCounter(func(ct *Counters) { ct.PeerCalls++ })
	body, err := c.Call(PeerProgram, PeerVersion, proc, args)
	if err != nil {
		return nfsproto.ErrServerFault, err
	}
	d := xdr.NewDecoder(body)
	st, err := d.Uint32()
	if err != nil {
		return nfsproto.ErrServerFault, err
	}
	status := nfsproto.Status(st)
	if status == nfsproto.OK && decodeRest != nil {
		if err := decodeRest(d); err != nil {
			return nfsproto.ErrServerFault, err
		}
	}
	return status, nil
}

// servePeer handles inbound peer-protocol calls. Peer handlers perform
// purely local mutations (they never call out to other sites), which keeps
// the peer protocol acyclic and deadlock-free.
func (s *Server) servePeer(call oncrpc.Call) (func(*xdr.Encoder), uint32) {
	s.addCounter(func(ct *Counters) { ct.PeerServed++ })
	d := xdr.NewDecoder(call.Body)
	switch call.Proc {
	case peerGetAttr:
		key, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		st, at := s.localGetAttrByKey(key)
		return func(e *xdr.Encoder) {
			e.PutUint32(uint32(st))
			if st == nfsproto.OK {
				at.Encode(e)
			}
		}, oncrpc.AcceptSuccess

	case peerSetAttr:
		key, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		var sa attr.SetAttr
		if err := sa.Decode(d); err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		st, at := s.localSetAttrByKey(key, &sa)
		return func(e *xdr.Encoder) {
			e.PutUint32(uint32(st))
			if st == nfsproto.OK {
				at.Encode(e)
			}
		}, oncrpc.AcceptSuccess

	case peerInsertEntry:
		parent, name, child, err := decodeEntryRecord(call.Body)
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		st := s.localInsertEntry(parent, name, child, true)
		return statusOnly(st), oncrpc.AcceptSuccess

	case peerRemoveEntry:
		parent, err := fhandle.Decode(d)
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		name, err := d.String()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		st, child := s.localRemoveEntry(parent, name, true)
		return func(e *xdr.Encoder) {
			e.PutUint32(uint32(st))
			if st == nfsproto.OK {
				child.Encode(e)
			}
		}, oncrpc.AcceptSuccess

	case peerTouchDir:
		key, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		delta, err := d.Int32()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		st := s.localTouchDir(key, delta)
		return statusOnly(st), oncrpc.AcceptSuccess

	case peerRemoveDirCell:
		child, err := fhandle.Decode(d)
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		st := s.localRemoveDirCell(child, true)
		return statusOnly(st), oncrpc.AcceptSuccess

	case peerListDir:
		parent, err := fhandle.Decode(d)
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		ents := s.localListDir(parent.Ident())
		return func(e *xdr.Encoder) {
			e.PutUint32(uint32(nfsproto.OK))
			e.PutUint32(uint32(len(ents)))
			for _, ent := range ents {
				e.PutUint64(ent.child.FileID)
				e.PutString(ent.name)
				ent.child.Encode(e)
			}
		}, oncrpc.AcceptSuccess

	case peerCountDir:
		parent, err := fhandle.Decode(d)
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		n := len(s.localListDir(parent.Ident()))
		return func(e *xdr.Encoder) {
			e.PutUint32(uint32(nfsproto.OK))
			e.PutUint32(uint32(n))
		}, oncrpc.AcceptSuccess

	case peerLinkDelta:
		key, err := d.Uint64()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		delta, err := d.Int32()
		if err != nil {
			return nil, oncrpc.AcceptGarbageArgs
		}
		st, nlink := s.localLinkDelta(key, delta)
		return func(e *xdr.Encoder) {
			e.PutUint32(uint32(st))
			if st == nfsproto.OK {
				e.PutUint32(nlink)
			}
		}, oncrpc.AcceptSuccess

	default:
		return nil, oncrpc.AcceptProcUnavail
	}
}

func statusOnly(st nfsproto.Status) func(*xdr.Encoder) {
	return func(e *xdr.Encoder) { e.PutUint32(uint32(st)) }
}

// remoteEntry is a directory entry fetched from a peer via ListDir.
type remoteEntry struct {
	name  string
	child fhandle.Handle
}

// peerFetchEntries retrieves all entries of parent resident at site.
func (s *Server) peerFetchEntries(site uint32, parent fhandle.Handle) ([]remoteEntry, error) {
	var out []remoteEntry
	st, err := s.peerCall(site, peerListDir,
		func(e *xdr.Encoder) { parent.Encode(e) },
		func(d *xdr.Decoder) error {
			n, err := d.Uint32()
			if err != nil {
				return err
			}
			if err := xdr.CheckLen(n, 1<<20); err != nil {
				return err
			}
			out = make([]remoteEntry, 0, n)
			for i := uint32(0); i < n; i++ {
				if _, err := d.Uint64(); err != nil { // fileID (redundant)
					return err
				}
				name, err := d.String()
				if err != nil {
					return err
				}
				child, err := fhandle.Decode(d)
				if err != nil {
					return err
				}
				out = append(out, remoteEntry{name: name, child: child})
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	if st != nfsproto.OK {
		return nil, st.Error()
	}
	return out, nil
}

// peerCountEntries returns how many entries of parent reside at site.
func (s *Server) peerCountEntries(site uint32, parent fhandle.Handle) (int, error) {
	var count uint32
	st, err := s.peerCall(site, peerCountDir,
		func(e *xdr.Encoder) { parent.Encode(e) },
		func(d *xdr.Decoder) error {
			var err error
			count, err = d.Uint32()
			return err
		})
	if err != nil {
		return 0, err
	}
	if st != nfsproto.OK {
		return 0, st.Error()
	}
	return int(count), nil
}

// peerGetAttrByKey fetches the attribute cell for key from site.
func (s *Server) peerGetAttrByKey(site uint32, key uint64) (nfsproto.Status, attr.Attr) {
	var at attr.Attr
	st, err := s.peerCall(site, peerGetAttr,
		func(e *xdr.Encoder) { e.PutUint64(key) },
		func(d *xdr.Decoder) error { return at.Decode(d) })
	if err != nil {
		return nfsproto.ErrServerFault, at
	}
	return st, at
}
