package oncrpc

import (
	"sync/atomic"
	"testing"
	"time"

	"slice/internal/netsim"
	"slice/internal/xdr"
)

func TestCallTraceRoundTrip(t *testing.T) {
	payload := EncodeCall(1, 7, 1, 3, func(e *xdr.Encoder) { e.PutUint32(0xBEEF) })
	body := payload[CallHeader:]
	if _, _, ok := SplitCallTrace(body); ok {
		t.Fatal("untraced body reported a trailer")
	}
	traced := AppendCallTrace(payload, 0xDEAD1234)
	id, stripped, ok := SplitCallTrace(traced[CallHeader:])
	if !ok || id != 0xDEAD1234 {
		t.Fatalf("SplitCallTrace = %x, %v", id, ok)
	}
	if len(stripped) != len(body) {
		t.Fatalf("stripped body %d bytes, want %d", len(stripped), len(body))
	}
	v, err := xdr.NewDecoder(stripped).Uint32()
	if err != nil || v != 0xBEEF {
		t.Fatalf("stripped body decodes to %x, %v", v, err)
	}
}

func TestReplyTraceRoundTrip(t *testing.T) {
	payload := EncodeReply(1, AcceptSuccess, func(e *xdr.Encoder) { e.PutUint32(5) })
	if _, _, ok := PeekReplyTrace(payload[ReplyHeader:]); ok {
		t.Fatal("untraced reply reported a trailer")
	}
	traced := AppendReplyTrace(payload, 99, 12345)
	id, ns, ok := PeekReplyTrace(traced[ReplyHeader:])
	if !ok || id != 99 || ns != 12345 {
		t.Fatalf("PeekReplyTrace = %d, %d, %v", id, ns, ok)
	}
	// Peek does not modify: an unaware decoder still reads the result.
	v, err := xdr.NewDecoder(traced[ReplyHeader:]).Uint32()
	if err != nil || v != 5 {
		t.Fatalf("reply body decodes to %d, %v", v, err)
	}
}

// TestTracedCallEndToEnd drives CallTraced against a server with an
// observer: the handler must see the trailer stripped, the observer must
// see the handler time, and the reply must carry the trace trailer.
func TestTracedCallEndToEnd(t *testing.T) {
	var sawTrace atomic.Uint64
	var sawBodyLen atomic.Int64
	h := HandlerFunc(func(call Call, from netsim.Addr) (func(*xdr.Encoder), uint32) {
		if call.Traced {
			sawTrace.Store(call.Trace)
		}
		sawBodyLen.Store(int64(len(call.Body)))
		time.Sleep(time.Millisecond)
		return func(e *xdr.Encoder) { e.PutUint32(77) }, AcceptSuccess
	})
	cli, srv := newPair(t, netsim.Config{}, h, ClientConfig{})

	var obsNS atomic.Uint64
	srv.SetObserver(func(prog, vers, proc uint32, handlerNS uint64) {
		if prog == 7 && proc == 3 {
			obsNS.Store(handlerNS)
		}
	})

	body, err := cli.CallTraced(0xABCD, 7, 1, 3, func(e *xdr.Encoder) { e.PutUint32(1) })
	if err != nil {
		t.Fatal(err)
	}
	if sawTrace.Load() != 0xABCD {
		t.Fatalf("handler saw trace %x, want abcd", sawTrace.Load())
	}
	if sawBodyLen.Load() != 4 {
		t.Fatalf("handler body = %d bytes, want 4 (trailer not stripped)", sawBodyLen.Load())
	}
	if obsNS.Load() == 0 {
		t.Fatal("observer saw zero handler time")
	}
	id, ns, ok := PeekReplyTrace(body)
	if !ok || id != 0xABCD {
		t.Fatalf("reply trailer = %x, %v", id, ok)
	}
	if ns < uint64(time.Millisecond) {
		t.Fatalf("server ns = %d, want >= 1ms", ns)
	}
	// The result itself still decodes for a trailer-unaware reader.
	v, err := xdr.NewDecoder(body).Uint32()
	if err != nil || v != 77 {
		t.Fatalf("result = %d, %v", v, err)
	}
}

// TestUntracedCallToObservedServer checks backward compatibility in the
// other direction: a plain Call to a server with an observer installed
// still works, and the trailer the server appends is invisible to the
// sequential decoder.
func TestUntracedCallToObservedServer(t *testing.T) {
	cli, srv := newPair(t, netsim.Config{}, echoHandler, ClientConfig{})
	var calls atomic.Uint64
	srv.SetObserver(func(prog, vers, proc uint32, handlerNS uint64) { calls.Add(1) })

	body, err := cli.Call(7, 1, 3, func(e *xdr.Encoder) { e.PutUint32(0xC0FFEE) })
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("observer calls = %d, want 1", calls.Load())
	}
	v, err := xdr.NewDecoder(body).Uint32()
	if err != nil || v != 0xC0FFEE {
		t.Fatalf("echo = %x, %v", v, err)
	}
	if id, _, ok := PeekReplyTrace(body); !ok || id != 0 {
		t.Fatalf("reply trailer = %d, %v; want id 0 present", id, ok)
	}
}
