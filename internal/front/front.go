// Package front is the flow-hashing front of the µproxy fleet: it maps
// each client flow to the proxy that owns it, by consistent hashing
// with virtual nodes (Chord-style). A flow is (client address, file
// handle) — all requests a client issues against one file hash to one
// proxy, so that proxy's soft state (attribute cache, name cache,
// pending table) sees the whole flow and no cross-proxy coordination
// ever sits on the data path. Virtual nodes keep the shares roughly
// equal; consistent hashing keeps flow movement minimal when a proxy
// joins or leaves — only the flows of the departed (or arrived) proxy
// change owner, so the soft state the survivors have built stays warm.
//
// The ring reads fleet membership from a route.Fleet snapshot and
// rebuilds itself lazily when the fleet version moves, so the lookup
// path is lock-free in steady state: one atomic load to check the
// version, one binary search over the point array.
package front

import (
	"sync"
	"sync/atomic"

	"slice/internal/netsim"
	"slice/internal/route"
)

// DefaultVNodes is the number of ring points per proxy. 160 points per
// member keeps the maximum share within ~1.3× the mean for small fleets
// (the balance test pins this at 1.35× for 8 proxies and 10k flows).
const DefaultVNodes = 160

// Ring is the consistent-hash ring over a fleet's membership. Lookups
// are wait-free against concurrent Swaps on the fleet: a stale ring
// generation keeps answering until the rebuild is published.
type Ring struct {
	fleet  *route.Fleet
	vnodes int

	mu    sync.Mutex // serializes rebuilds
	state atomic.Pointer[ringState]
}

// ringState is the ring built for one fleet generation.
type ringState struct {
	version uint64   // fleet version this ring reflects
	points  []uint64 // sorted ring point hashes
	owners  []route.ProxyMember
}

// NewRing builds a ring over the fleet with the given points per
// member; vnodes <= 0 selects DefaultVNodes.
func NewRing(fleet *route.Fleet, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{fleet: fleet, vnodes: vnodes}
	r.state.Store(r.build())
	return r
}

// Fleet returns the membership table the ring routes over.
func (r *Ring) Fleet() *route.Fleet { return r.fleet }

// build constructs the ring for the fleet's current membership.
func (r *Ring) build() *ringState {
	version := r.fleet.Version()
	members := r.fleet.Members()
	st := &ringState{version: version}
	if len(members) == 0 {
		return st
	}
	n := len(members) * r.vnodes
	st.points = make([]uint64, 0, n)
	st.owners = make([]route.ProxyMember, 0, n)
	type pt struct {
		hash  uint64
		owner route.ProxyMember
	}
	pts := make([]pt, 0, n)
	for _, m := range members {
		for v := 0; v < r.vnodes; v++ {
			pts = append(pts, pt{pointHash(m.ID, uint32(v)), m})
		}
	}
	// Sort by hash; ties (vanishingly rare for a 64-bit mix) resolve to
	// the lower member ID so every ring is deterministic.
	sortPoints := func(a, b pt) bool {
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.owner.ID < b.owner.ID
	}
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && sortPoints(pts[j], pts[j-1]); j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	for _, p := range pts {
		st.points = append(st.points, p.hash)
		st.owners = append(st.owners, p.owner)
	}
	return st
}

// load returns a ring state current for the fleet's membership,
// rebuilding at most once per fleet generation.
func (r *Ring) load() *ringState {
	st := r.state.Load()
	if st.version == r.fleet.Version() {
		return st
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st = r.state.Load(); st.version == r.fleet.Version() {
		return st
	}
	st = r.build()
	r.state.Store(st)
	return st
}

// Owner maps a flow key to the proxy that owns it: the successor of the
// key on the ring, wrapping at the top. ok is false when the fleet is
// empty.
func (r *Ring) Owner(key uint64) (route.ProxyMember, bool) {
	st := r.load()
	if len(st.points) == 0 {
		return route.ProxyMember{}, false
	}
	h := mix64(key)
	// Binary search for the first point >= h.
	lo, hi := 0, len(st.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if st.points[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(st.points) {
		lo = 0
	}
	return st.owners[lo], true
}

// Resolve maps a flow key straight to the owning proxy's virtual
// address, with the zero Addr for an empty fleet. This is the shape the
// RPC layer's per-transmission re-resolve wants: a zero address tells
// it to fall back to its static server.
func (r *Ring) Resolve(key uint64) netsim.Addr {
	m, ok := r.Owner(key)
	if !ok {
		return netsim.Addr{}
	}
	return m.Virtual
}

// FlowKey derives the flow key of (client address, file-handle key).
// Both halves pass through the mixer so adjacent hosts and sequential
// handles spread over the whole ring. Mount-time traffic (no handle
// yet) uses handle key 0, which is a perfectly good flow.
func FlowKey(client netsim.Addr, fhKey uint64) uint64 {
	h := mix64(uint64(client.Host)<<16 | uint64(client.Port))
	return mix64(h ^ fhKey)
}

// pointHash places virtual node v of member id on the ring.
func pointHash(id, v uint32) uint64 {
	return mix64(uint64(id)<<32 | uint64(v))
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche 64-bit mix.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
