package rebalance

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"slice/internal/coord"
	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/obs"
	"slice/internal/replica"
	"slice/internal/route"
	"slice/internal/storage"
	"slice/internal/wal"
)

// rig is a minimal storage array without the ensemble wrapper (ensemble
// imports this package, so tests here wire nodes directly).
type rig struct {
	net    *netsim.Network
	stores map[netsim.Addr]*storage.ObjectStore
	nodes  map[netsim.Addr]*storage.Node
	table  *route.Table
	io     *route.IOPolicy
}

func addrN(i int) netsim.Addr { return netsim.Addr{Host: uint32(10 + i), Port: 2049} }

// newRig starts storage nodes on addrs[0:cur] as the current binding
// (ring table) and pre-starts the rest so a transition can target them.
func newRig(t *testing.T, addrs []netsim.Addr, cur int) *rig {
	t.Helper()
	r := &rig{
		net:    netsim.New(netsim.Config{}),
		stores: make(map[netsim.Addr]*storage.ObjectStore),
		nodes:  make(map[netsim.Addr]*storage.Node),
	}
	for _, a := range addrs {
		port, err := r.net.Bind(a)
		if err != nil {
			t.Fatalf("bind %v: %v", a, err)
		}
		st := storage.NewObjectStore()
		r.stores[a] = st
		r.nodes[a] = storage.NewNode(port, st)
	}
	r.table = route.NewRingTable(addrs[:cur])
	r.io = route.NewIOPolicy(nil, r.table)
	t.Cleanup(func() {
		for _, n := range r.nodes {
			n.Close()
		}
	})
	return r
}

func (r *rig) driver(t *testing.T, reg *obs.Registry) *Driver {
	t.Helper()
	d := New(Config{
		Net:       r.net,
		Host:      200,
		IO:        r.io,
		Settle:    time.Millisecond,
		Heartbeat: 20 * time.Millisecond,
		Obs:       reg,
	})
	t.Cleanup(d.Close)
	return d
}

// movedID returns the first id >= start whose stripe 0 lands on want
// under a ring binding over next (i.e. an object the transition moves).
func movedID(t *testing.T, next []netsim.Addr, want netsim.Addr, start uint64) uint64 {
	t.Helper()
	nt := route.NewRingTable(next)
	for id := start; id < start+1<<20; id++ {
		if a, err := nt.Route(id); err == nil && a == want {
			return id
		}
	}
	t.Fatal("no id found that the transition moves")
	return 0
}

// fill writes deterministic bytes for (id, off).
func fill(p []byte, id, off uint64) {
	for i := range p {
		p[i] = byte(id*131 + (off+uint64(i))*7 + 3)
	}
}

// populate writes an object of the given size striped per the CURRENT
// binding, the way foreground bulk writes would have landed it.
func (r *rig) populate(t *testing.T, id, size uint64) {
	t.Helper()
	su := r.io.StripeUnit
	for off := uint64(0); off == 0 || off < size; off += su {
		a, err := r.table.Route(id + off/su)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		n := su
		if off+n > size {
			n = size - off
		}
		if n == 0 {
			if err := r.stores[a].Truncate(storage.ObjectID(id), 0); err != nil {
				t.Fatalf("truncate: %v", err)
			}
			break
		}
		p := make([]byte, n)
		fill(p, id, off)
		if err := r.stores[a].WriteAt(storage.ObjectID(id), int64(off), p, true); err != nil {
			t.Fatalf("write: %v", err)
		}
		if off+su >= size {
			break
		}
	}
}

// checkPlacement asserts every stripe of (id, size) reads back correctly
// from the node the table currently routes it to.
func (r *rig) checkPlacement(t *testing.T, id, size uint64) {
	t.Helper()
	su := r.io.StripeUnit
	for off := uint64(0); off == 0 || off < size; off += su {
		a, err := r.table.Route(id + off/su)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		if size == 0 {
			if _, ok := r.stores[a].Size(storage.ObjectID(id)); !ok {
				t.Fatalf("object %d absent on %v after rebalance", id, a)
			}
			break
		}
		n := su
		if off+n > size {
			n = size - off
		}
		want := make([]byte, n)
		fill(want, id, off)
		got := make([]byte, n)
		cnt, _, err := r.stores[a].ReadAt(storage.ObjectID(id), int64(off), got)
		if err != nil || uint64(cnt) != n {
			t.Fatalf("obj %d off %d on %v: read %d bytes, err %v (want %d)", id, off, a, cnt, err, n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("obj %d off %d on %v: byte %d = %#x, want %#x", id, off, a, i, got[i], want[i])
			}
		}
		if off+su >= size {
			break
		}
	}
}

func TestGrowMovesBlocks(t *testing.T) {
	addrs := make([]netsim.Addr, 6)
	for i := range addrs {
		addrs[i] = addrN(i)
	}
	r := newRig(t, addrs, 4)
	su := r.io.StripeUnit
	sizes := map[uint64]uint64{
		1: 0,           // zero-length: must still appear at its new site
		2: su / 2,      // sub-stripe
		3: 3*su + su/3, // multi-stripe with a short tail
		4: 4 * su,      // exact stripe multiple
		5: su,
	}
	for id, size := range sizes {
		r.populate(t, id, size)
	}
	// A small-file backing object must not migrate with the striped space.
	smallID := uint64(0x5F)<<56 | 7
	r.populate(t, smallID, 16)

	reg := obs.NewRegistry("rebalance-test")
	d := r.driver(t, reg)
	preCommitRan := false
	if err := d.Run(addrs, nil, func() error { preCommitRan = true; return nil }); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !preCommitRan {
		t.Fatal("preCommit hook did not run")
	}
	if r.table.Transitioning() {
		t.Fatal("transition still open after Run")
	}
	for id, size := range sizes {
		r.checkPlacement(t, id, size)
	}
	// The small-file object stayed where it was and nowhere else.
	onOld, onNew := 0, 0
	for a, st := range r.stores {
		if _, ok := st.Size(storage.ObjectID(smallID)); ok {
			if a == addrs[4] || a == addrs[5] {
				onNew++
			} else {
				onOld++
			}
		}
	}
	if onOld != 1 || onNew != 0 {
		t.Fatalf("small-file object: on %d old and %d new nodes, want 1/0", onOld, onNew)
	}

	st := d.Status()
	if st.State != "done" || st.Epoch == 0 || st.BytesMoved == 0 || st.ChunksChecked == 0 {
		t.Fatalf("status = %+v", st)
	}
	var js Status
	if err := json.Unmarshal(d.StatusJSON(), &js); err != nil || js.State != "done" {
		t.Fatalf("StatusJSON: %v / %+v", err, js)
	}
	if reg.Snapshot().Hists["rebalance.copy_chunk"].Count() == 0 {
		t.Fatal("copy histogram recorded nothing")
	}
}

func TestShrinkMovesBlocksOffRemoved(t *testing.T) {
	addrs := make([]netsim.Addr, 6)
	for i := range addrs {
		addrs[i] = addrN(i)
	}
	r := newRig(t, addrs, 6)
	su := r.io.StripeUnit
	sizes := map[uint64]uint64{11: 2 * su, 12: 5*su + 100, 13: su / 4}
	for id, size := range sizes {
		r.populate(t, id, size)
	}
	d := r.driver(t, nil)
	if err := d.Run(addrs[:4], nil, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for id, size := range sizes {
		r.checkPlacement(t, id, size)
	}
	for _, a := range r.table.Physical() {
		if a == addrs[4] || a == addrs[5] {
			t.Fatalf("removed node %v still in the table", a)
		}
	}
}

func TestListPaging(t *testing.T) {
	addrs := []netsim.Addr{addrN(0), addrN(1)}
	r := newRig(t, addrs, 1)
	// More objects than one PeerProcList page.
	n := replica.PeerListMax + 88
	for i := 0; i < n; i++ {
		r.populate(t, uint64(1000+i), 8)
	}
	d := r.driver(t, nil)
	if err := d.Run(addrs, nil, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.Status().Objects != n {
		t.Fatalf("enumerated %d objects, want %d", d.Status().Objects, n)
	}
	for i := 0; i < n; i++ {
		r.checkPlacement(t, uint64(1000+i), 8)
	}
}

func TestTruncateSyncsStaleDest(t *testing.T) {
	addrs := []netsim.Addr{addrN(0), addrN(1)}
	r := newRig(t, addrs, 1)
	su := r.io.StripeUnit
	// An object whose new placement is the incoming node, already holding
	// a stale larger copy there (earlier aborted migration). The driver
	// must chop it to the source size.
	id := movedID(t, addrs, addrs[1], 21)
	r.populate(t, id, su/2)
	stale := make([]byte, 2*su)
	if err := r.stores[addrs[1]].WriteAt(storage.ObjectID(id), 0, stale, true); err != nil {
		t.Fatal(err)
	}
	d := r.driver(t, nil)
	if err := d.Run(addrs, nil, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	r.checkPlacement(t, id, su/2)
	if size, ok := r.stores[addrs[1]].Size(storage.ObjectID(id)); !ok || size != int64(su/2) {
		t.Fatalf("incoming node: object size %d (present %v), want %d", size, ok, su/2)
	}
}

func TestGhostScrub(t *testing.T) {
	addrs := []netsim.Addr{addrN(0), addrN(1)}
	r := newRig(t, addrs, 1)
	r.populate(t, 31, 64)
	// A ghost: bytes on the incoming node for an object no source lists
	// (its file was removed while an earlier copy attempt was in flight).
	ghost := movedID(t, addrs, addrs[1], 99)
	if err := r.stores[addrs[1]].WriteAt(storage.ObjectID(ghost), 0, []byte("stale"), true); err != nil {
		t.Fatal(err)
	}
	d := r.driver(t, nil)
	if err := d.Run(addrs, nil, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, ok := r.stores[addrs[1]].Size(storage.ObjectID(ghost)); ok {
		t.Fatal("ghost object survived the scrub")
	}
	if d.Status().Ghosts == 0 {
		t.Fatal("ghost removal not counted")
	}
	r.checkPlacement(t, 31, 64)
}

func TestReplicatedGrow(t *testing.T) {
	addrs := make([]netsim.Addr, 6)
	for i := range addrs {
		addrs[i] = addrN(i)
	}
	r := newRig(t, addrs, 6) // start all nodes; bindings pick primaries
	curReps := replica.NewMap(2, addrs[:4])
	curPrim := []netsim.Addr{addrs[0], addrs[2]}
	r.table = route.NewRingTable(curPrim)
	r.io = route.NewIOPolicy(nil, r.table)
	r.io.Replicas = curReps

	su := r.io.StripeUnit
	sizes := map[uint64]uint64{41: 3 * su, 42: su + 9}
	// Foreground writes land on every group member.
	for id, size := range sizes {
		for off := uint64(0); off < size; off += su {
			prim, err := r.table.Route(id + off/su)
			if err != nil {
				t.Fatal(err)
			}
			g, ok := curReps.GroupOf(prim)
			if !ok {
				t.Fatalf("no group for %v", prim)
			}
			n := su
			if off+n > size {
				n = size - off
			}
			p := make([]byte, n)
			fill(p, id, off)
			for _, m := range g.Members {
				if err := r.stores[m].WriteAt(storage.ObjectID(id), int64(off), p, true); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	nextReps := replica.NewMap(2, addrs)
	nextPrim := []netsim.Addr{addrs[0], addrs[2], addrs[4]}
	d := r.driver(t, nil)
	if err := d.Run(nextPrim, nextReps, func() error {
		r.io.Replicas = nextReps
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Every stripe must now be whole on EVERY member of its new group.
	for id, size := range sizes {
		for off := uint64(0); off < size; off += su {
			prim, err := r.table.Route(id + off/su)
			if err != nil {
				t.Fatal(err)
			}
			g, _ := nextReps.GroupOf(prim)
			n := su
			if off+n > size {
				n = size - off
			}
			want := make([]byte, n)
			fill(want, id, off)
			for _, m := range g.Members {
				got := make([]byte, n)
				cnt, _, err := r.stores[m].ReadAt(storage.ObjectID(id), int64(off), got)
				if err != nil || uint64(cnt) != n {
					t.Fatalf("obj %d off %d member %v: read %d, err %v", id, off, m, cnt, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("obj %d off %d member %v: byte %d differs", id, off, m, i)
					}
				}
			}
		}
	}
}

func TestForegroundWritesDuringMigration(t *testing.T) {
	addrs := make([]netsim.Addr, 6)
	for i := range addrs {
		addrs[i] = addrN(i)
	}
	r := newRig(t, addrs, 4)
	su := r.io.StripeUnit
	// Real bulk writes key objects by HandleKey, so derive ids from
	// handles (skipping the rare key that collides with the small-file
	// id space and would be ignored by the copier).
	var fhs []fhandle.Handle
	var ids []uint64
	for fid := uint64(50); len(ids) < 20; fid++ {
		fh := fhandle.Handle{FileID: fid}
		id := fhandle.HandleKey(fh)
		if id>>56 == smallFileIDByte {
			continue
		}
		fhs = append(fhs, fh)
		ids = append(ids, id)
	}
	for _, id := range ids {
		r.populate(t, id, 2*su)
	}
	// A foreground writer racing the copy: it resolves WriteTargets
	// (which union both bindings mid-transition) and writes everywhere,
	// exactly as the µproxy fan-out does.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			i := int(seq % 20)
			off := (seq % 2) * su
			p := make([]byte, su)
			fill(p, ids[i], off)
			targets, err := r.io.WriteTargets(fhs[i], off/su)
			if err == nil {
				for _, a := range targets {
					_ = r.stores[a].WriteAt(storage.ObjectID(ids[i]), int64(off), p, true)
				}
			}
			seq++
			time.Sleep(time.Millisecond)
		}
	}()
	d := r.driver(t, nil)
	err := d.Run(addrs, nil, nil)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("Run under foreground load: %v", err)
	}
	for _, id := range ids {
		r.checkPlacement(t, id, 2*su)
	}
}

func TestRunRejectsOpenTransition(t *testing.T) {
	addrs := []netsim.Addr{addrN(0), addrN(1)}
	r := newRig(t, addrs, 1)
	if _, err := r.table.Begin(addrs, nil); err != nil {
		t.Fatal(err)
	}
	d := r.driver(t, nil)
	if err := d.Run(addrs, nil, nil); err == nil {
		t.Fatal("Run succeeded with a transition already open")
	}
	if d.Status().State == "done" {
		t.Fatal("status reports done after refused run")
	}
}

func TestRunAbortsOnPreCommitError(t *testing.T) {
	addrs := []netsim.Addr{addrN(0), addrN(1)}
	r := newRig(t, addrs, 1)
	r.populate(t, 61, 128)
	ver0 := r.table.Version()
	d := r.driver(t, nil)
	if err := d.Run(addrs, nil, func() error { return fmt.Errorf("swap refused") }); err == nil {
		t.Fatal("Run ignored preCommit error")
	}
	if r.table.Transitioning() {
		t.Fatal("transition left open after failed Run")
	}
	if len(r.table.Physical()) != 1 {
		t.Fatal("table grew despite the abort")
	}
	if r.table.Version() == ver0 {
		t.Fatal("abort did not bump the version")
	}
	if st := d.Status(); st.State != "failed" || st.Err == "" {
		t.Fatalf("status = %+v, want failed", st)
	}
}

func TestRunFailsWhenPeerDenies(t *testing.T) {
	addrs := []netsim.Addr{addrN(0), addrN(1)}
	r := newRig(t, addrs, 1)
	r.populate(t, 71, 64)
	for _, n := range r.nodes {
		n.RequireCapability([]byte("array-key"))
	}
	d := New(Config{
		Net:         r.net,
		Host:        201,
		IO:          r.io,
		CapKey:      []byte("wrong-key"),
		Settle:      time.Millisecond,
		RetryBudget: 50 * time.Millisecond,
	})
	defer d.Close()
	if err := d.Run(addrs, nil, nil); err == nil {
		t.Fatal("Run succeeded with a rejected bearer token")
	}
	if r.table.Transitioning() {
		t.Fatal("failed run left the transition open")
	}
}

// TestIntentionHeartbeat runs a migration against a live coordinator
// whose probe interval is far shorter than the copy, proving the
// heartbeat keeps the intention fresh (a stale one would fire
// finish(OpMigrate) and abort the transition under the driver).
func TestIntentionHeartbeat(t *testing.T) {
	addrs := make([]netsim.Addr, 6)
	for i := range addrs {
		addrs[i] = addrN(i)
	}
	r := newRig(t, addrs, 4)
	su := r.io.StripeUnit
	for id := uint64(80); id < 90; id++ {
		r.populate(t, id, 3*su)
	}
	coordAddr := netsim.Addr{Host: 90, Port: 3049}
	cport, err := r.net.Bind(coordAddr)
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(wal.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	co := coord.New(cport, coord.Config{
		Log:        log,
		Storage:    r.table,
		Net:        r.net,
		Host:       90,
		ProbeAfter: 50 * time.Millisecond,
	})
	defer co.Close()

	d := New(Config{
		Net:       r.net,
		Host:      202,
		IO:        r.io,
		Coord:     coordAddr,
		Heartbeat: 10 * time.Millisecond,
		Settle:    30 * time.Millisecond, // several probe windows per run
	})
	defer d.Close()
	if err := d.Run(addrs, nil, nil); err != nil {
		t.Fatalf("Run with coordinator: %v", err)
	}
	for id := uint64(80); id < 90; id++ {
		r.checkPlacement(t, id, 3*su)
	}
	// After commit the chain is complete: give the probe time to fire on
	// anything left behind and confirm the committed binding survives.
	time.Sleep(120 * time.Millisecond)
	if r.table.Transitioning() || len(distinct(r.table.Physical())) != 6 {
		t.Fatal("committed binding did not survive the probe")
	}
}

// TestStaleIntentionRollsBack simulates a driver crash: the migrate
// intention goes stale and the coordinator's probe must abort the
// transition (the crash-safety half of the protocol).
func TestStaleIntentionRollsBack(t *testing.T) {
	addrs := []netsim.Addr{addrN(0), addrN(1)}
	r := newRig(t, addrs, 1)
	coordAddr := netsim.Addr{Host: 91, Port: 3049}
	cport, err := r.net.Bind(coordAddr)
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(wal.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	co := coord.New(cport, coord.Config{
		Log:        log,
		Storage:    r.table,
		Net:        r.net,
		Host:       91,
		ProbeAfter: 40 * time.Millisecond,
	})
	defer co.Close()

	epoch, err := r.table.Begin(addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Log the intention the way the driver would, then "crash".
	d := New(Config{Net: r.net, Host: 203, IO: r.io, Coord: coordAddr})
	defer d.Close()
	if id := d.intend(epoch); id == 0 {
		t.Fatal("intend failed")
	}
	deadline := time.Now().Add(2 * time.Second)
	for r.table.Transitioning() {
		if time.Now().After(deadline) {
			t.Fatal("stale migrate intention never rolled the transition back")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := len(r.table.Physical()); got != 1 {
		t.Fatalf("rollback left %d nodes, want the original 1", got)
	}
}
