package coord

import (
	"testing"
	"time"

	"slice/internal/fhandle"
	"slice/internal/netsim"
	"slice/internal/nfsproto"
	"slice/internal/oncrpc"
	"slice/internal/route"
	"slice/internal/storage"
	"slice/internal/wal"
	"slice/internal/xdr"
)

// rig is a coordinator with two storage nodes and one small-file-server
// stand-in (a plain storage node: both speak the raw-object program).
type rig struct {
	t     *testing.T
	net   *netsim.Network
	nodes []*storage.Node
	co    *Coordinator
	store *wal.MemStore
	cli   *oncrpc.Client
}

func newRig(t *testing.T, probeAfter time.Duration) *rig {
	t.Helper()
	r := &rig{t: t, net: netsim.New(netsim.Config{})}
	var addrs []netsim.Addr
	for i := 0; i < 2; i++ {
		a := netsim.Addr{Host: uint32(10 + i), Port: 2049}
		port, err := r.net.Bind(a)
		if err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, storage.NewNode(port, storage.NewObjectStore()))
		addrs = append(addrs, a)
	}
	cport, err := r.net.Bind(netsim.Addr{Host: 90, Port: 3049})
	if err != nil {
		t.Fatal(err)
	}
	r.store = wal.NewMemStore()
	log, err := wal.Open(r.store)
	if err != nil {
		t.Fatal(err)
	}
	r.co = New(cport, Config{
		Log:        log,
		Storage:    route.NewTable(4, addrs),
		Net:        r.net,
		Host:       90,
		ProbeAfter: probeAfter,
	})
	clip, _ := r.net.BindAny(200)
	r.cli = oncrpc.NewClient(clip, r.co.Addr(), oncrpc.ClientConfig{})
	t.Cleanup(func() {
		r.cli.Close()
		r.co.Close()
		for _, n := range r.nodes {
			n.Close()
		}
	})
	return r
}

func testFH(id uint64) fhandle.Handle {
	return fhandle.Handle{Volume: 1, FileID: id, Type: 1, Gen: 1}
}

func TestIntendCompleteLifecycle(t *testing.T) {
	r := newRig(t, time.Hour)
	id, err := r.co.Intend(OpRemove, testFH(1), 0)
	if err != nil || id == 0 {
		t.Fatalf("intend: id=%d err=%v", id, err)
	}
	if r.co.PendingIntentions() != 1 {
		t.Fatalf("pending = %d", r.co.PendingIntentions())
	}
	r.co.Complete(id)
	if r.co.PendingIntentions() != 0 {
		t.Fatalf("pending after complete = %d", r.co.PendingIntentions())
	}
	st := r.co.Stats()
	if st.Intentions != 1 || st.Completions != 1 || st.Finished != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Double-complete is a no-op.
	r.co.Complete(id)
	if got := r.co.Stats().Completions; got != 1 {
		t.Fatalf("double complete counted: %d", got)
	}
}

// TestProbeFinishesAbandonedRemove: if the µproxy dies after declaring a
// remove intention, the coordinator clears the data itself.
func TestProbeFinishesAbandonedRemove(t *testing.T) {
	r := newRig(t, time.Hour) // probe driven manually
	fh := testFH(7)
	// Victim data on both storage nodes.
	for _, n := range r.nodes {
		if err := n.Store().WriteAt(storage.ObjectOf(fh), 0, []byte("doomed"), true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.co.Intend(OpRemove, fh, 0); err != nil {
		t.Fatal(err)
	}
	// No completion arrives. Drive the probe past the deadline.
	n := r.co.CheckIntentions(time.Now().Add(2 * time.Hour))
	if n != 1 {
		t.Fatalf("CheckIntentions finished %d, want 1", n)
	}
	for i, node := range r.nodes {
		if _, ok := node.Store().Size(storage.ObjectOf(fh)); ok {
			t.Fatalf("node %d still holds the object after probe-driven remove", i)
		}
	}
	if r.co.PendingIntentions() != 0 {
		t.Fatal("intention not cleared after finish")
	}
	if r.co.Stats().Finished != 1 {
		t.Fatalf("stats %+v", r.co.Stats())
	}
}

func TestProbeFinishesAbandonedTruncate(t *testing.T) {
	r := newRig(t, time.Hour)
	fh := testFH(8)
	for _, n := range r.nodes {
		_ = n.Store().WriteAt(storage.ObjectOf(fh), 0, make([]byte, 10000), true)
	}
	if _, err := r.co.Intend(OpTruncate, fh, 100); err != nil {
		t.Fatal(err)
	}
	r.co.CheckIntentions(time.Now().Add(2 * time.Hour))
	for i, node := range r.nodes {
		if size, ok := node.Store().Size(storage.ObjectOf(fh)); ok && size > 100 {
			t.Fatalf("node %d size %d after probe-driven truncate", i, size)
		}
	}
}

// TestProbeFinishesAbandonedCommit: an abandoned commit intention drives
// the storage nodes durable.
func TestProbeFinishesAbandonedCommit(t *testing.T) {
	r := newRig(t, time.Hour)
	fh := testFH(9)
	_ = r.nodes[0].Store().WriteAt(storage.ObjectOf(fh), 0, []byte("unstable"), false)
	if _, err := r.co.Intend(OpCommit, fh, 8); err != nil {
		t.Fatal(err)
	}
	r.co.CheckIntentions(time.Now().Add(2 * time.Hour))
	// After the forced commit, a crash must not lose the data.
	r.nodes[0].Store().Crash()
	buf := make([]byte, 8)
	n, _, err := r.nodes[0].Store().ReadAt(storage.ObjectOf(fh), 0, buf)
	if err != nil || n != 8 {
		t.Fatalf("data lost despite probe-driven commit: n=%d err=%v", n, err)
	}
}

func TestFreshIntentionNotFinishedEarly(t *testing.T) {
	r := newRig(t, time.Hour)
	if _, err := r.co.Intend(OpRemove, testFH(1), 0); err != nil {
		t.Fatal(err)
	}
	if n := r.co.CheckIntentions(time.Now()); n != 0 {
		t.Fatalf("fresh intention finished early (%d)", n)
	}
}

// TestRecoverCompletesInFlight: a restarted coordinator scans its log and
// finishes operations that were in flight at the crash (§3.3.2).
func TestRecoverCompletesInFlight(t *testing.T) {
	r := newRig(t, time.Hour)
	fh := testFH(11)
	for _, n := range r.nodes {
		_ = n.Store().WriteAt(storage.ObjectOf(fh), 0, []byte("zombie"), true)
	}
	done, _ := r.co.Intend(OpRemove, testFH(12), 0)
	r.co.Complete(done)
	if _, err := r.co.Intend(OpRemove, fh, 0); err != nil { // never completed
		t.Fatal(err)
	}

	// Recover into the same coordinator from the durable log.
	log2, err := wal.Open(r.store.CrashCopy())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.co.Recover(log2); err != nil {
		t.Fatal(err)
	}
	if r.co.PendingIntentions() != 0 {
		t.Fatalf("pending after recovery = %d", r.co.PendingIntentions())
	}
	for i, node := range r.nodes {
		if _, ok := node.Store().Size(storage.ObjectOf(fh)); ok {
			t.Fatalf("node %d still holds data of recovered remove", i)
		}
	}
}

func TestGetMapStableAndLogged(t *testing.T) {
	r := newRig(t, time.Hour)
	fh := testFH(20)
	m1, err := r.co.GetMap(fh, 0, 8)
	if err != nil || len(m1) != 8 {
		t.Fatalf("GetMap: %v %v", m1, err)
	}
	// Same answer on refetch.
	m2, _ := r.co.GetMap(fh, 0, 8)
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("block map changed between fetches")
		}
	}
	// Sub-range fetch matches.
	m3, _ := r.co.GetMap(fh, 4, 2)
	if m3[0] != m1[4] || m3[1] != m1[5] {
		t.Fatal("fragment fetch disagrees with full map")
	}
	// Maps survive coordinator recovery.
	log2, _ := wal.Open(r.store.CrashCopy())
	if err := r.co.Recover(log2); err != nil {
		t.Fatal(err)
	}
	m4, _ := r.co.GetMap(fh, 0, 8)
	for i := range m1 {
		if m1[i] != m4[i] {
			t.Fatal("block map lost in recovery")
		}
	}
}

func TestGetMapSpreadsStripes(t *testing.T) {
	r := newRig(t, time.Hour)
	m, err := r.co.GetMap(testFH(21), 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for _, s := range m {
		seen[s] = true
	}
	if len(seen) < 2 {
		t.Fatalf("map allocation used %d sites", len(seen))
	}
}

// ------------------------------------------------------------ RPC surface

func TestCoordinatorRPC(t *testing.T) {
	r := newRig(t, time.Hour)
	fh := testFH(30)

	// Intend over RPC.
	body, err := r.cli.Call(Program, Version, ProcIntend, func(e *xdr.Encoder) {
		e.PutUint32(OpCommit)
		fh.Encode(e)
		e.PutUint64(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	d := xdr.NewDecoder(body)
	st, _ := d.Uint32()
	id, _ := d.Uint64()
	if nfsproto.Status(st) != nfsproto.OK || id == 0 {
		t.Fatalf("intend rpc: %v id=%d", nfsproto.Status(st), id)
	}

	// Complete over RPC.
	if _, err := r.cli.Call(Program, Version, ProcComplete, func(e *xdr.Encoder) {
		e.PutUint64(id)
	}); err != nil {
		t.Fatal(err)
	}
	if r.co.PendingIntentions() != 0 {
		t.Fatal("intention survives RPC complete")
	}

	// GetMap over RPC.
	body, err = r.cli.Call(Program, Version, ProcGetMap, func(e *xdr.Encoder) {
		fh.Encode(e)
		e.PutUint64(0)
		e.PutUint32(4)
	})
	if err != nil {
		t.Fatal(err)
	}
	d = xdr.NewDecoder(body)
	st, _ = d.Uint32()
	n, _ := d.Uint32()
	if nfsproto.Status(st) != nfsproto.OK || n != 4 {
		t.Fatalf("getmap rpc: %v n=%d", nfsproto.Status(st), n)
	}
}

// ---------------------------------------------------- failure-path fixes

// slowSyncStore stalls every durability sync, simulating a slow or hung
// log device.
type slowSyncStore struct {
	*wal.MemStore
	delay time.Duration
}

func (s *slowSyncStore) Sync() error {
	time.Sleep(s.delay)
	return s.MemStore.Sync()
}

// TestConcurrentIntentionsProgressWithSlowLog is the regression test for
// the lock-over-sync bug: Intend used to hold c.mu across the log's
// durability sync, so one slow sync serialized every coordinator RPC and
// even Stats/PendingIntentions. Now concurrent intentions group-commit:
// N concurrent Intends must finish in a small multiple of ONE sync delay,
// not N of them, and the read paths must answer while syncs are stuck.
func TestConcurrentIntentionsProgressWithSlowLog(t *testing.T) {
	const delay = 100 * time.Millisecond
	net := netsim.New(netsim.Config{})
	sport, err := net.Bind(netsim.Addr{Host: 10, Port: 2049})
	if err != nil {
		t.Fatal(err)
	}
	node := storage.NewNode(sport, storage.NewObjectStore())
	defer node.Close()
	cport, err := net.Bind(netsim.Addr{Host: 90, Port: 3049})
	if err != nil {
		t.Fatal(err)
	}
	store := &slowSyncStore{MemStore: wal.NewMemStore(), delay: delay}
	log, err := wal.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	co := New(cport, Config{
		Log:        log,
		Storage:    route.NewTable(4, []netsim.Addr{sport.Addr()}),
		Net:        net,
		Host:       90,
		ProbeAfter: time.Hour,
	})
	defer co.Close()

	const callers = 8
	start := time.Now()
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func(i uint64) {
			_, err := co.Intend(OpRemove, testFH(100+i), 0)
			errs <- err
		}(uint64(i))
	}

	// While the intentions are (at most two sync windows) in flight, the
	// read-only surface must stay responsive.
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		_ = co.Stats()
		_ = co.PendingIntentions()
	}()
	select {
	case <-readDone:
	case <-time.After(delay / 2):
		t.Fatal("Stats/PendingIntentions blocked behind a slow log sync")
	}

	for i := 0; i < callers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// Serialized behaviour would need callers*delay (800ms). Group commit
	// needs the leader's sync plus at most one follower batch.
	if elapsed > 4*delay {
		t.Fatalf("%d concurrent intentions took %v; want ~<=%v (group commit)", callers, elapsed, 3*delay)
	}
	if co.PendingIntentions() != callers {
		t.Fatalf("pending = %d, want %d", co.PendingIntentions(), callers)
	}
}

// TestRestartServesAfterRecovery: Restart rebuilds state and finishes
// in-flight operations BEFORE serving, so a caller that reaches the new
// incarnation can never observe pre-recovery state, and new intention ids
// never collide with recovered ones.
func TestRestartServesAfterRecovery(t *testing.T) {
	r := newRig(t, time.Hour)
	fh := testFH(40)
	for _, n := range r.nodes {
		_ = n.Store().WriteAt(storage.ObjectOf(fh), 0, []byte("zombie"), true)
	}
	oldID, err := r.co.Intend(OpRemove, fh, 0) // never completed
	if err != nil {
		t.Fatal(err)
	}
	r.co.Close()

	log2, err := wal.Open(r.store.CrashCopy())
	if err != nil {
		t.Fatal(err)
	}
	port2, err := r.net.Bind(netsim.Addr{Host: 91, Port: 3049})
	if err != nil {
		t.Fatal(err)
	}
	co2, err := Restart(port2, Config{
		Storage:    route.NewTable(4, []netsim.Addr{r.nodes[0].Addr(), r.nodes[1].Addr()}),
		Net:        r.net,
		Host:       91,
		ProbeAfter: time.Hour,
	}, log2)
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()

	if co2.PendingIntentions() != 0 {
		t.Fatalf("pending after Restart = %d", co2.PendingIntentions())
	}
	for i, node := range r.nodes {
		if _, ok := node.Store().Size(storage.ObjectOf(fh)); ok {
			t.Fatalf("node %d still holds data of interrupted remove", i)
		}
	}
	newID, err := co2.Intend(OpCommit, testFH(41), 0)
	if err != nil {
		t.Fatal(err)
	}
	if newID <= oldID {
		t.Fatalf("restarted coordinator reused intention id space: new %d <= old %d", newID, oldID)
	}
}
