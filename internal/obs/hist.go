// Package obs is the always-on observability layer of the live Slice
// stack: lock-free power-of-two latency histograms, named registries with
// text and JSON exposition, and pooled per-request trace spans that
// attribute latency to individual hops (µproxy stages, directory servers,
// small-file servers, storage nodes, the coordinator).
//
// The paper's evaluation is entirely about where time goes — Table 3
// breaks down per-request µproxy CPU cost and Figures 4–7 are latency
// curves — so the live system keeps the same accounting cheap enough to
// leave on: recording a sample is a single atomic add, and trace spans
// are pooled so the steady-state data path stays allocation-free.
package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed number of power-of-two histogram buckets.
// Bucket 0 holds zero samples; bucket i (i ≥ 1) holds samples in
// [2^(i-1), 2^i). The last bucket additionally absorbs everything at or
// above 2^(NumBuckets-2): at nanosecond resolution that is ≈ 39 hours,
// far beyond any request latency worth distinguishing.
const NumBuckets = 48

// Histogram is a fixed-size, mergeable, lock-free latency histogram.
// Record is one atomic add; there is no separate count or sum field to
// keep the hot-path cost at exactly one contended cache line per sample.
// The zero value is ready to use.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
}

// bucketIndex maps a sample to its bucket: the position of the highest
// set bit, so buckets are powers of two.
func bucketIndex(v uint64) int {
	i := bits.Len64(v)
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketUpper returns the largest value bucket i spans (0 for bucket 0).
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// Record adds one sample. It is safe for any number of concurrent
// callers and costs one atomic add.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketIndex(v)].Add(1)
}

// RecordSince records the elapsed nanoseconds since t0.
func (h *Histogram) RecordSince(t0 time.Time) {
	h.Record(uint64(time.Since(t0)))
}

// RecordDuration records a duration sample in nanoseconds. Negative
// durations (clock steps) record as zero.
func (h *Histogram) RecordDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Count returns the total number of recorded samples.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Snapshot copies the bucket counts. Buckets are loaded individually, so
// a snapshot taken while writers are active is approximate (each bucket
// is internally consistent; the total may straddle in-flight samples).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is an immutable copy of a histogram, the unit of merging
// and percentile extraction.
type HistSnapshot struct {
	Buckets [NumBuckets]uint64
}

// Count returns the total samples in the snapshot.
func (s HistSnapshot) Count() uint64 {
	var n uint64
	for _, b := range s.Buckets {
		n += b
	}
	return n
}

// Merge adds other's buckets into s. Snapshots from any number of
// histograms (e.g. one per ensemble component) merge associatively.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
}

// Percentile returns the upper bound of the bucket containing the q-th
// percentile sample (q in [0,1]). With power-of-two buckets the result
// is exact to within a factor of two, which is what latency analysis
// needs; it returns 0 for an empty snapshot.
func (s HistSnapshot) Percentile(q float64) uint64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based: ceil(q * total), at least 1.
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) || rank == 0 {
		rank++
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Max returns the upper bound of the highest non-empty bucket.
func (s HistSnapshot) Max() uint64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return BucketUpper(i)
		}
	}
	return 0
}

// Mean estimates the arithmetic mean using each bucket's midpoint. It is
// approximate by construction (buckets are a factor of two wide).
func (s HistSnapshot) Mean() float64 {
	var sum, n float64
	for i, b := range s.Buckets {
		if b == 0 {
			continue
		}
		var mid float64
		if i > 0 {
			lo := float64(uint64(1) << uint(i-1))
			mid = lo * 1.5
		}
		sum += mid * float64(b)
		n += float64(b)
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// Nanos formats a nanosecond quantity compactly for exposition.
func Nanos(ns uint64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
