package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestAppendScanRoundTrip(t *testing.T) {
	store := NewMemStore()
	log, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := log.Append(uint32(i%3), []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	var seen []string
	err = log.Scan(func(seq uint64, recType uint32, payload []byte) error {
		seen = append(seen, fmt.Sprintf("%d:%d:%s", seq, recType, payload))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 {
		t.Fatalf("scanned %d records, want 10", len(seen))
	}
	if seen[0] != "1:0:record-0" || seen[9] != "10:0:record-9" {
		t.Fatalf("unexpected records: %v", seen)
	}
}

func TestSequenceNumbersSurviveReopen(t *testing.T) {
	store := NewMemStore()
	log, _ := Open(store)
	seq1, _ := log.AppendSync(1, []byte("a"))
	log2, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	seq2, _ := log2.AppendSync(1, []byte("b"))
	if seq2 <= seq1 {
		t.Fatalf("sequence did not advance across reopen: %d then %d", seq1, seq2)
	}
}

// TestCrashLosesUnsyncedTail: records appended but not synced disappear
// after a crash; synced records survive.
func TestCrashLosesUnsyncedTail(t *testing.T) {
	store := NewMemStore()
	log, _ := Open(store)
	if _, err := log.AppendSync(1, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(1, []byte("volatile")); err != nil {
		t.Fatal(err)
	}
	crashed := store.CrashCopy()
	log2, err := Open(crashed)
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	_ = log2.Scan(func(seq uint64, recType uint32, payload []byte) error {
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if len(payloads) != 1 || !bytes.Equal(payloads[0], []byte("durable")) {
		t.Fatalf("after crash: %q, want only the durable record", payloads)
	}
}

// TestTornTailIgnored: a partial final record (mid-append crash) must not
// poison the scan.
func TestTornTailIgnored(t *testing.T) {
	store := NewMemStore()
	log, _ := Open(store)
	_, _ = log.AppendSync(1, []byte("whole"))
	// Simulate a torn append: write half a frame directly.
	_ = store.Append([]byte{0x51, 0xC3, 0x10, 0x6E, 0x00, 0x00})
	_ = store.Sync()
	log2, err := Open(store)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	count := 0
	if err := log2.Scan(func(uint64, uint32, []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("scanned %d records, want 1", count)
	}
}

// TestMidLogCorruptionDetected: corruption before the tail is an error,
// not a silent truncation.
func TestMidLogCorruptionDetected(t *testing.T) {
	store := NewMemStore()
	log, _ := Open(store)
	_, _ = log.AppendSync(1, bytes.Repeat([]byte("x"), 100))
	_, _ = log.AppendSync(1, bytes.Repeat([]byte("y"), 100))
	data, _ := store.Contents()
	data[30] ^= 0xFF // flip a bit inside the first record's payload
	bad := NewMemStore()
	_ = bad.Append(data)
	_ = bad.Sync()
	if _, err := Open(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestCheckpointResetsLogKeepsSeq(t *testing.T) {
	store := NewMemStore()
	log, _ := Open(store)
	seq1, _ := log.AppendSync(1, []byte("pre"))
	if err := log.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	count := 0
	_ = log.Scan(func(uint64, uint32, []byte) error { count++; return nil })
	if count != 0 {
		t.Fatalf("%d records after checkpoint, want 0", count)
	}
	seq2, _ := log.AppendSync(1, []byte("post"))
	if seq2 <= seq1 {
		t.Fatalf("sequence regressed after checkpoint: %d then %d", seq1, seq2)
	}
}

func TestGroupCommit(t *testing.T) {
	store := NewMemStore()
	log, _ := Open(store)
	for i := 0; i < 100; i++ {
		if _, err := log.Append(1, []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := log.Sync(); err != nil { // no-op: nothing dirty
		t.Fatal(err)
	}
	if got := store.Syncs(); got != 1 {
		t.Fatalf("store synced %d times for 100 appends + 2 Sync calls, want 1", got)
	}
	st := log.Stats()
	if st.Appends != 100 || st.Syncs != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEmptyLogScan(t *testing.T) {
	log, err := Open(NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Scan(func(uint64, uint32, []byte) error {
		t.Fatal("callback on empty log")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestScanCallbackErrorPropagates(t *testing.T) {
	log, _ := Open(NewMemStore())
	_, _ = log.AppendSync(1, []byte("x"))
	sentinel := errors.New("stop")
	if err := log.Scan(func(uint64, uint32, []byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestLargePayloads(t *testing.T) {
	log, _ := Open(NewMemStore())
	big := bytes.Repeat([]byte{0xAB}, 1<<16)
	if _, err := log.AppendSync(9, big); err != nil {
		t.Fatal(err)
	}
	var got []byte
	_ = log.Scan(func(_ uint64, _ uint32, p []byte) error {
		got = append([]byte(nil), p...)
		return nil
	})
	if !bytes.Equal(got, big) {
		t.Fatal("large payload mismatch")
	}
}
